// Expression simplification for recovered use-def DAGs.
//
// The detectors work better on normalized conditions: a selection
// like `v.rank + 10 > 50` is range-indexable on `v.rank` only after
// rewriting to `v.rank > 40`. Simplify() applies semantics-preserving
// rewrites:
//
//   * constant folding of pure subtrees (operators and functional
//     builtins over constant arguments),
//   * double-negation elimination and NOT-of-comparison inversion,
//   * normalization of integer comparisons `(E + c) cmp k` and
//     `(E - c) cmp k` to `E cmp k'` (guarded against i64 overflow),
//   * canonical constant-on-the-right orientation for comparisons.
//
// Unknown/member/impure nodes are left untouched — simplification
// never manufactures certainty the analyzer does not have.

#ifndef MANIMAL_ANALYZER_SIMPLIFY_H_
#define MANIMAL_ANALYZER_SIMPLIFY_H_

#include "analysis/expr.h"

namespace manimal::analyzer {

// Returns a semantically equivalent, possibly simpler expression.
// Never fails: inputs that cannot be simplified come back unchanged
// (possibly the same object).
analysis::ExprRef Simplify(const analysis::ExprRef& expr);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_SIMPLIFY_H_
