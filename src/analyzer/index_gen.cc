#include "analyzer/index_gen.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "obs/trace.h"

namespace manimal::analyzer {

namespace {

std::string JoinInts(const std::vector<int>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

std::string IndexGenProgram::Signature() const {
  std::string out = "v1";
  out += "|schema=" + input_schema;
  out += "|btree=";
  out += btree ? (key_expr ? key_expr->ToString() : "?") : "-";
  if (btree && clustered) out += "|clustered";
  out += "|proj=";
  out += projection ? JoinInts(kept_fields) : "-";
  out += "|delta=";
  out += delta ? JoinInts(delta_fields) : "-";
  out += "|dict=";
  out += dictionary ? JoinInts(dict_fields) : "-";
  if (column_groups) {
    out += "|cgroups=";
    for (size_t g = 0; g < grouping.size(); ++g) {
      if (g) out += ";";
      out += JoinInts(grouping[g]);
    }
  }
  return out;
}

std::string IndexGenProgram::Describe() const {
  std::vector<std::string> parts;
  if (btree) {
    parts.push_back(std::string(clustered ? "clustered " : "") +
                    "B+Tree on " +
                    (key_expr ? key_expr->ToString() : "?"));
  }
  if (projection) {
    parts.push_back("project to fields [" + JoinInts(kept_fields) + "]");
  }
  if (delta) {
    parts.push_back("delta-encode fields [" + JoinInts(delta_fields) +
                    "]");
  }
  if (dictionary) {
    parts.push_back("dictionary-encode fields [" + JoinInts(dict_fields) +
                    "]");
  }
  if (column_groups) {
    parts.push_back(
        StrPrintf("column-groups(%zu groups)", grouping.size()));
  }
  return "IndexGen{" + JoinStrings(parts, "; ") + "}";
}

std::vector<IndexGenProgram> SynthesizeIndexPrograms(
    const mril::Program& program, const AnalysisReport& report) {
  obs::ScopedSpan span("analyzer.synthesize_index_programs",
                       "analyzer");
  span.AddArg("program", program.name);
  std::vector<IndexGenProgram> out;
  const std::string schema = program.value_schema.ToString();

  const bool have_select =
      report.selection.has_value() && report.selection->indexable();
  const bool have_project = report.projection.has_value();
  const bool have_delta = report.delta.has_value();
  const bool have_dict = report.direct_op.has_value();

  auto base = [&]() {
    IndexGenProgram p;
    p.input_schema = schema;
    return p;
  };

  // Maximal combination first. Selection conflicts with
  // delta-compression (footnote 3: "we currently favor selection over
  // delta-compression").
  {
    IndexGenProgram p = base();
    if (have_select) {
      p.btree = true;
      p.key_expr = report.selection->indexed_expr;
    }
    if (have_project) {
      p.projection = true;
      p.kept_fields = report.projection->used_fields;
    }
    if (have_delta && !have_select) {
      p.delta = true;
      p.delta_fields = report.delta->numeric_fields;
      if (have_project) {
        // Only keep delta fields that survive projection.
        std::vector<int> kept;
        for (int f : p.delta_fields) {
          if (std::find(p.kept_fields.begin(), p.kept_fields.end(), f) !=
              p.kept_fields.end()) {
            kept.push_back(f);
          }
        }
        p.delta_fields = std::move(kept);
        if (p.delta_fields.empty()) p.delta = false;
      }
    }
    // Dictionary encoding never combines with a B+Tree artifact (the
    // payload codec keeps true strings so range payloads stay
    // self-contained).
    if (have_dict && !have_select) {
      p.dictionary = true;
      p.dict_fields = report.direct_op->fields;
      if (have_project) {
        std::vector<int> kept;
        for (int f : p.dict_fields) {
          if (std::find(p.kept_fields.begin(), p.kept_fields.end(), f) !=
              p.kept_fields.end()) {
            kept.push_back(f);
          }
        }
        p.dict_fields = std::move(kept);
        if (p.dict_fields.empty()) p.dictionary = false;
      }
    }
    if (p.btree || p.projection || p.delta || p.dictionary) {
      out.push_back(std::move(p));
    }
  }

  // Individually useful artifacts (deduplicated by signature).
  auto push_unique = [&out](IndexGenProgram p) {
    for (const IndexGenProgram& existing : out) {
      if (existing.Signature() == p.Signature()) return;
    }
    out.push_back(std::move(p));
  };

  if (have_select) {
    // The clustered variant (records embedded in key order); folds in
    // projection when detected.
    IndexGenProgram p = base();
    p.btree = true;
    p.clustered = true;
    p.key_expr = report.selection->indexed_expr;
    if (have_project) {
      p.projection = true;
      p.kept_fields = report.projection->used_fields;
    }
    push_unique(std::move(p));
  }
  if (have_select) {
    // Clustered without projection (what the Table 3 experiment
    // isolates).
    IndexGenProgram p = base();
    p.btree = true;
    p.clustered = true;
    p.key_expr = report.selection->indexed_expr;
    push_unique(std::move(p));
  }
  if (have_select) {
    IndexGenProgram p = base();
    p.btree = true;
    p.key_expr = report.selection->indexed_expr;
    push_unique(std::move(p));
  }
  if (have_project) {
    IndexGenProgram p = base();
    p.projection = true;
    p.kept_fields = report.projection->used_fields;
    push_unique(std::move(p));
  }
  if (have_project && program.value_schema.num_fields() > 1) {
    // The workload-agnostic projection realization (paper §2.1):
    // per-field column groups. One artifact serves every future
    // projection over this input — ranked below the program's exact
    // projection, above the compression-only forms.
    IndexGenProgram p = base();
    p.column_groups = true;
    for (int i = 0; i < program.value_schema.num_fields(); ++i) {
      p.grouping.push_back({i});
    }
    push_unique(std::move(p));
  }
  if (have_delta) {
    IndexGenProgram p = base();
    p.delta = true;
    p.delta_fields = report.delta->numeric_fields;
    push_unique(std::move(p));
  }
  if (have_dict) {
    IndexGenProgram p = base();
    p.dictionary = true;
    p.dict_fields = report.direct_op->fields;
    push_unique(std::move(p));
  }
  return out;
}

}  // namespace manimal::analyzer
