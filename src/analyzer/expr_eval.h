// Concrete evaluation of recovered (functional) expressions against an
// input record. The index-generation job uses this to compute the
// B+Tree key for every record, and tests use it to differentially
// validate the selection formula against actual map() behaviour.
//
// Only functional expressions (IsFunctional == true) are evaluatable;
// members/unknowns/impure calls yield errors.

#ifndef MANIMAL_ANALYZER_EXPR_EVAL_H_
#define MANIMAL_ANALYZER_EXPR_EVAL_H_

#include "analyzer/descriptor.h"
#include "common/status.h"
#include "serde/value.h"

namespace manimal::analyzer {

// Evaluates `expr` with map parameters (key, value). `value` is the
// deserialized record (a list value) or opaque blob (a str value).
Result<Value> EvalExpr(const ExprRef& expr, const Value& key,
                       const Value& value);

// Evaluates the whole DNF formula; true iff some disjunct's terms all
// evaluate to their required polarity.
Result<bool> EvalFormula(const DnfFormula& formula, const Value& key,
                         const Value& value);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_EXPR_EVAL_H_
