// Selection detection — the Figure 3 algorithm.
//
// findSelect computes a DNF formula over map()'s inputs that holds iff
// the function emits, gated by the isFunc safety test on every
// condition (and, beyond the paper's pseudocode, on the emitted
// key/value expressions and on the absence of member-variable writes —
// the Figure 2 hazard). It then tries to make the formula
// range-indexable: if every literal compares one common expression
// against constants, the descriptor carries that expression as the
// B+Tree key plus a union of key intervals that over-approximates the
// satisfying records (never under-approximates — safety).

#ifndef MANIMAL_ANALYZER_SELECT_H_
#define MANIMAL_ANALYZER_SELECT_H_

#include <optional>
#include <string>

#include "analyzer/descriptor.h"
#include "mril/program.h"

namespace manimal::analyzer {

struct SelectResult {
  // Set when a selection was safely detected AND is non-trivial (the
  // map does not emit unconditionally).
  std::optional<SelectionDescriptor> descriptor;
  // When not detected, why (empty when the map simply always emits —
  // that is "no selection present", not a failure).
  std::string miss_reason;
  // True when the map provably emits on every invocation (no selection
  // semantics present at all).
  bool always_emits = false;
};

SelectResult FindSelect(const mril::Program& program);

// Attempts to derive (indexed_expr, intervals) from a DNF formula.
// Returns false when the formula is not a single-expression range
// predicate. On success the interval union covers every input that
// could satisfy the formula (an over-approximation is fine — the map
// still applies the original predicate — but never an
// under-approximation).
//
// Beyond plain `E cmp const` literals, integer-shifted comparisons
// `(E + c) cmp k` / `(E - c) cmp k` are normalized onto E when E is
// statically i64-typed; because the VM's arithmetic wraps, the derived
// ranges include an explicit wrap-guard region so adversarial values
// near the i64 edge still land inside the scan.
bool DeriveIndexRanges(const mril::Program& program,
                       const DnfFormula& formula, ExprRef* indexed_expr,
                       std::vector<KeyInterval>* intervals);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_SELECT_H_
