#include "analyzer/descriptor.h"

#include "common/strings.h"

namespace manimal::analyzer {

std::string SelectTerm::ToString() const {
  std::string body = expr != nullptr ? expr->ToString() : "<null>";
  return polarity ? body : "!" + body;
}

std::string Conjunct::ToString() const {
  if (terms.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i) out += " && ";
    out += terms[i].ToString();
  }
  return out;
}

std::string DnfFormula::ToString() const {
  if (disjuncts.empty()) return "false";
  std::string out;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (i) out += " || ";
    out += "(" + disjuncts[i].ToString() + ")";
  }
  return out;
}

bool KeyInterval::Contains(const Value& v) const {
  if (lo.has_value()) {
    int c = v.Compare(*lo);
    if (c < 0 || (c == 0 && !lo_inclusive)) return false;
  }
  if (hi.has_value()) {
    int c = v.Compare(*hi);
    if (c > 0 || (c == 0 && !hi_inclusive)) return false;
  }
  return true;
}

std::string KeyInterval::ToString() const {
  std::string out = lo_inclusive ? "[" : "(";
  out += lo.has_value() ? lo->ToString() : "-inf";
  out += ", ";
  out += hi.has_value() ? hi->ToString() : "+inf";
  out += hi_inclusive ? "]" : ")";
  return out;
}

std::string SelectionDescriptor::ToString() const {
  std::string out = "SELECT{formula=" + formula.ToString();
  if (indexed_expr != nullptr) {
    out += ", index_on=" + indexed_expr->ToString() + ", ranges=";
    for (size_t i = 0; i < intervals.size(); ++i) {
      if (i) out += " u ";
      out += intervals[i].ToString();
    }
  } else {
    out += ", not-range-indexable";
  }
  out += "}";
  return out;
}

namespace {

std::string JoinInts(const std::vector<int>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

std::string ProjectionDescriptor::ToString() const {
  return "PROJECT{used=[" + JoinInts(used_fields) + "], drop=[" +
         JoinInts(unneeded_fields) + "]}";
}

std::string DeltaCompressionDescriptor::ToString() const {
  return "DELTA{numeric_fields=[" + JoinInts(numeric_fields) + "]}";
}

std::string DirectOperationDescriptor::ToString() const {
  return "DIRECTOP{fields=[" + JoinInts(fields) + "]}";
}

std::string ReduceFilterDescriptor::ToString() const {
  return "REDUCE-FILTER{key must satisfy " + required.ToString() + "}";
}

std::string AnalysisReport::ToString() const {
  std::string out = "AnalysisReport{\n";
  if (selection.has_value()) out += "  " + selection->ToString() + "\n";
  if (projection.has_value()) out += "  " + projection->ToString() + "\n";
  if (delta.has_value()) out += "  " + delta->ToString() + "\n";
  if (direct_op.has_value()) out += "  " + direct_op->ToString() + "\n";
  if (reduce_filter.has_value()) {
    out += "  " + reduce_filter->ToString() + "\n";
  }
  for (const MissReason& m : misses) {
    out += "  miss[" + m.optimization + "]: " + m.reason + "\n";
  }
  for (const auto& se : side_effects) {
    out += StrPrintf("  side-effect@%d: %s\n", se.pc,
                     se.description.c_str());
  }
  out += "}";
  return out;
}

}  // namespace manimal::analyzer
