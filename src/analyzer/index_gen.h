// Index-generation programs (paper §2.2: "submitting a job for
// execution yields not just a program result, but also an
// index-generation program... itself a MapReduce program [that]
// generates an indexed version of the submitted job's input data").
//
// An IndexGenProgram describes the alternate physical representation
// to materialize: which optimization(s) it serves, the B+Tree key
// expression (for selection), the fields to keep (projection), to
// delta-encode, or to dictionary-encode. The execution fabric runs it
// as a scan -> transform -> sort -> bulk-load pipeline, and the
// catalog tracks the resulting artifact under Signature().

#ifndef MANIMAL_ANALYZER_INDEX_GEN_H_
#define MANIMAL_ANALYZER_INDEX_GEN_H_

#include <string>
#include <vector>

#include "analyzer/descriptor.h"
#include "mril/program.h"

namespace manimal::analyzer {

struct IndexGenProgram {
  // Which physical optimizations the artifact supports. A single
  // artifact may support several (e.g. a B+Tree over projected
  // records): "the current analyzer always chooses the index program
  // that exploits as many optimizations as possible" (paper §2.2).
  bool btree = false;        // selection via B+Tree range scans
  bool projection = false;   // unneeded fields removed
  bool delta = false;        // numeric fields delta-encoded
  bool dictionary = false;   // direct-op fields dictionary-encoded

  // B+Tree layout. Unclustered (default): the tree maps keys to
  // record locators in the base file — tiny (Table 2's 0.1%-11.7%
  // space overheads) and unbeatable at needle selectivities.
  // Clustered: records are embedded in key order, so bytes read scale
  // linearly with selectivity (Table 3, whose indexed input is as
  // large as the original data).
  bool clustered = false;

  // Column-group storage (paper §2.1): the input's columns split
  // across row-aligned sibling files per `grouping`; a single such
  // artifact serves EVERY projection pattern over this input, not just
  // the one the analyzer saw. Mutually exclusive with the other
  // physical forms.
  bool column_groups = false;
  std::vector<std::vector<int>> grouping;

  // kBTree: expression evaluated per record to produce the index key.
  ExprRef key_expr;

  // Projection: field indexes kept, ascending (empty + !projection
  // means all fields).
  std::vector<int> kept_fields;

  // Delta: numeric field indexes to delta-encode.
  std::vector<int> delta_fields;

  // Dictionary: string field indexes to encode.
  std::vector<int> dict_fields;

  // Schema of the original input the artifact was derived from.
  std::string input_schema;

  // Stable identity for catalog lookup: two programs whose analysis
  // yields the same signature can share the artifact.
  std::string Signature() const;

  std::string Describe() const;
};

// Synthesizes the index-generation programs implied by an analysis
// report: first the maximal combination, then each individually useful
// artifact. Selection and delta-compression never combine (paper §2
// footnote 3).
std::vector<IndexGenProgram> SynthesizeIndexPrograms(
    const mril::Program& program, const AnalysisReport& report);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_INDEX_GEN_H_
