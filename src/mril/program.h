// MRIL program containers: Instruction, Function, Program.
//
// A Program is the compiled unit a user submits to Manimal: the map()
// function (mandatory), an optional reduce() function, class member
// variables (state that persists across map() invocations — the
// Figure 2 hazard), a constant pool, and the declared input types of
// map(): the key schema and value schema, which "effectively declare
// the file's schema" (paper §2.2).

#ifndef MANIMAL_MRIL_PROGRAM_H_
#define MANIMAL_MRIL_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mril/opcode.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace manimal::mril {

struct Instruction {
  Opcode op = Opcode::kNop;
  int32_t operand = 0;

  bool operator==(const Instruction& other) const = default;
};

struct MemberVar {
  std::string name;
  Value initial_value;
};

// Which VM parameter the map()'s record argument occupies.
inline constexpr int kMapKeyParam = 0;
inline constexpr int kMapValueParam = 1;
inline constexpr int kReduceKeyParam = 0;
inline constexpr int kReduceValuesParam = 1;

struct Function {
  std::string name;
  int num_params = 2;
  int num_locals = 0;
  std::vector<Instruction> code;
};

// What the declared type of the map() *value* parameter is.
enum class ValueParamKind {
  kRecord,  // structured record described by value_schema
  kOpaque,  // custom serialization: a blob the analyzer can't see into
};

class Program {
 public:
  std::string name;

  // Declared input types of map().
  FieldType key_type = FieldType::kI64;
  ValueParamKind value_param_kind = ValueParamKind::kRecord;
  Schema value_schema;

  // If true, the job's contract requires final output in sorted key
  // order, which vetoes direct-operation compression of the map output
  // key (paper §2.1, footnote 1).
  bool requires_sorted_output = false;

  std::vector<MemberVar> members;
  std::vector<Value> constants;

  Function map_fn;
  std::optional<Function> reduce_fn;

  // Adds a constant, deduplicating scalars; returns pool index.
  int AddConstant(const Value& v);

  std::optional<int> MemberIndex(std::string_view name) const;

  bool has_reduce() const { return reduce_fn.has_value(); }

  // Full human-readable textual disassembly.
  std::string Disassemble() const;
};

// Disassembles a single function body with one instruction per line.
std::string DisassembleFunction(const Program& program, const Function& fn);

// Renders one instruction, resolving operand meaning (constant value,
// builtin name, field name) against the program.
std::string FormatInstruction(const Program& program, const Function& fn,
                              int pc);

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_PROGRAM_H_
