#include "mril/builtins.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/strings.h"
#include "serde/record_codec.h"

namespace manimal::mril {

namespace {

Status WantStr(const Value& v, const char* who) {
  if (!v.is_str()) {
    return Status::InvalidArgument(std::string(who) + ": expected str, got " +
                                   ValueKindName(v.kind()));
  }
  return Status::OK();
}

Status WantI64(const Value& v, const char* who) {
  if (!v.is_i64()) {
    return Status::InvalidArgument(std::string(who) +
                                   ": expected i64, got " +
                                   ValueKindName(v.kind()));
  }
  return Status::OK();
}

Status WantNumeric(const Value& v, const char* who) {
  if (!v.is_numeric()) {
    return Status::InvalidArgument(std::string(who) +
                                   ": expected numeric, got " +
                                   ValueKindName(v.kind()));
  }
  return Status::OK();
}

Status WantHashtable(const Value& v, HashtableObject** out,
                     const char* who) {
  if (!v.is_handle()) {
    return Status::InvalidArgument(std::string(who) +
                                   ": expected hashtable handle");
  }
  auto* ht = dynamic_cast<HashtableObject*>(v.handle().get());
  if (ht == nullptr) {
    return Status::InvalidArgument(std::string(who) +
                                   ": handle is not a hashtable");
  }
  *out = ht;
  return Status::OK();
}

// strtoll/strtod need NUL-terminated input; string_view is not. Parse
// through a stack buffer (falls back to a heap copy only for
// implausibly long numerals).
template <typename Parse>
auto ParseNumeral(std::string_view s, Parse parse) {
  char buf[64];
  if (s.size() < sizeof(buf)) {
    std::memcpy(buf, s.data(), s.size());
    buf[s.size()] = '\0';
    return parse(buf);
  }
  return parse(std::string(s).c_str());
}

// str.word_at(s, i) is the tokenization idiom in Benchmark-4-style
// map() code: a loop calling word_at(doc, 0), word_at(doc, 1), ... up
// to word_count. A from-scratch scan per call makes that loop
// quadratic in the document length, so we memoize the scan position of
// the previous call and resume from it when the same string is asked
// for a later word. The memo key must prove "same string":
//   owned     shared_ptr pointee identity; `keepalive` holds a
//             reference so the allocation cannot be freed and reused
//             at the same address while the memo is live.
//   borrowed  (data, len) plus the thread's borrow epoch. Within one
//             epoch, live borrowed buffers are never reclaimed (the
//             Value::Borrowed lifetime contract), so (data, len)
//             uniquely identifies content; the VM bumps the epoch via
//             InvalidateBorrowedStringMemos() whenever buffers may be
//             recycled (each invocation entry, next to arena reset).
//   inline    never memoized: the bytes live inside the argument Value
//             itself (a stack slot whose address is reused constantly),
//             and a <=22-byte scan is cheap anyway.
struct WordAtMemo {
  const char* data = nullptr;
  size_t len = 0;
  uint64_t epoch = 0;                      // borrowed-key validity
  std::shared_ptr<std::string> keepalive;  // non-null => owned key
  int64_t next_index = 0;  // first word index at/after `offset`
  size_t offset = 0;       // scan resume position (a word boundary)
};

thread_local uint64_t g_borrow_epoch = 0;
thread_local WordAtMemo g_word_at_memo;

// Scans `s` for word number `want` starting at `pos`, with `index`
// words already counted before `pos` (`pos` must be a word boundary:
// 0 or just past the end of word `index`). Words are maximal runs of
// characters other than ' ', '\t', '\n'.
bool FindWord(std::string_view s, int64_t want, size_t pos, int64_t index,
              size_t* start, size_t* end) {
  bool in_word = false;
  size_t word_start = 0;
  for (size_t i = pos; i <= s.size(); ++i) {
    bool is_space =
        (i == s.size() || s[i] == ' ' || s[i] == '\t' || s[i] == '\n');
    if (!is_space && !in_word) {
      ++index;
      word_start = i;
    }
    if (is_space && in_word && index == want) {
      *start = word_start;
      *end = i;
      return true;
    }
    in_word = !is_space;
  }
  return false;
}

}  // namespace

void InvalidateBorrowedStringMemos() {
  ++g_borrow_epoch;
  WordAtMemo& memo = g_word_at_memo;
  if (memo.data != nullptr && memo.keepalive == nullptr) {
    // Drop the stale borrowed key eagerly (epoch alone already
    // invalidates it; this keeps the dangling pointer from lingering).
    memo = WordAtMemo();
  }
}

void HashtableObject::Put(const Value& key, const Value& value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = value.ToOwned();
      return;
    }
  }
  entries_.emplace_back(key.ToOwned(), value.ToOwned());
}

bool HashtableObject::Contains(const Value& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

Value HashtableObject::Get(const Value& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return Value::Null();
}

BuiltinRegistry::BuiltinRegistry() {
  auto add = [this](std::string name, int arity, bool functional,
                    BuiltinFn fn) {
    Builtin b;
    b.id = static_cast<int>(builtins_.size());
    b.name = std::move(name);
    b.arity = arity;
    b.functional = functional;
    b.fn = fn;
    builtins_.push_back(std::move(b));
  };
  // Fixed result kinds, recorded after registration (see the table at
  // the bottom of this constructor).

  // ---- String methods (functional; paper: String, Pattern etc.) ----
  add("str.len", 1, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.len"));
    *r = Value::I64(static_cast<int64_t>(a[0].str().size()));
    return Status::OK();
  });
  add("str.concat", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.concat"));
    MANIMAL_RETURN_IF_ERROR(WantStr(a[1], "str.concat"));
    std::string_view x = a[0].str();
    std::string_view y = a[1].str();
    std::string cat;
    cat.reserve(x.size() + y.size());
    cat.append(x);
    cat.append(y);
    *r = Value::Str(std::move(cat));
    return Status::OK();
  });
  add("str.substr", 3, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.substr"));
    MANIMAL_RETURN_IF_ERROR(WantI64(a[1], "str.substr"));
    MANIMAL_RETURN_IF_ERROR(WantI64(a[2], "str.substr"));
    int64_t start = std::max<int64_t>(a[1].i64(), 0);
    int64_t len = std::max<int64_t>(a[2].i64(), 0);
    *r = SubstrValue(a[0], static_cast<size_t>(start),
                     static_cast<size_t>(len));
    return Status::OK();
  });
  add("str.contains", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.contains"));
    MANIMAL_RETURN_IF_ERROR(WantStr(a[1], "str.contains"));
    *r = Value::Bool(a[0].str().find(a[1].str()) !=
                     std::string_view::npos);
    return Status::OK();
  });
  add("str.starts_with", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.starts_with"));
    MANIMAL_RETURN_IF_ERROR(WantStr(a[1], "str.starts_with"));
    *r = Value::Bool(StartsWith(a[0].str(), a[1].str()));
    return Status::OK();
  });
  add("str.ends_with", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.ends_with"));
    MANIMAL_RETURN_IF_ERROR(WantStr(a[1], "str.ends_with"));
    *r = Value::Bool(EndsWith(a[0].str(), a[1].str()));
    return Status::OK();
  });
  add("str.index_of", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.index_of"));
    MANIMAL_RETURN_IF_ERROR(WantStr(a[1], "str.index_of"));
    size_t pos = a[0].str().find(a[1].str());
    *r = Value::I64(pos == std::string_view::npos
                        ? -1
                        : static_cast<int64_t>(pos));
    return Status::OK();
  });
  add("str.to_lower", 1, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.to_lower"));
    std::string s(a[0].str());
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    *r = Value::Str(std::move(s));
    return Status::OK();
  });
  add("str.equals", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.equals"));
    MANIMAL_RETURN_IF_ERROR(WantStr(a[1], "str.equals"));
    *r = Value::Bool(a[0].str() == a[1].str());
    return Status::OK();
  });
  // Word-level helpers modeling text tokenization (Benchmark 4 style).
  add("str.word_count", 1, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.word_count"));
    int64_t count = 0;
    bool in_word = false;
    for (char c : a[0].str()) {
      bool is_space = (c == ' ' || c == '\t' || c == '\n');
      if (!is_space && !in_word) ++count;
      in_word = !is_space;
    }
    *r = Value::I64(count);
    return Status::OK();
  });
  add("str.word_at", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "str.word_at"));
    MANIMAL_RETURN_IF_ERROR(WantI64(a[1], "str.word_at"));
    std::string_view s = a[0].str();
    int64_t want = a[1].i64();
    // Memoizable storage classes: owned (shared_ptr identity) and
    // borrowed (address + borrow epoch). See WordAtMemo above.
    const std::shared_ptr<std::string>* owned = a[0].if_owned_str();
    bool memoizable = owned != nullptr || a[0].is_borrowed_str();
    WordAtMemo& memo = g_word_at_memo;
    size_t pos = 0;
    int64_t index = -1;
    if (memoizable && memo.data == s.data() && memo.len == s.size() &&
        want >= memo.next_index &&
        (owned != nullptr
             ? memo.keepalive.get() == owned->get()
             : (memo.keepalive == nullptr && memo.epoch == g_borrow_epoch))) {
      pos = memo.offset;
      index = memo.next_index - 1;
    }
    size_t start = 0, end = 0;
    if (FindWord(s, want, pos, index, &start, &end)) {
      if (memoizable) {
        memo.data = s.data();
        memo.len = s.size();
        memo.epoch = g_borrow_epoch;
        memo.keepalive = (owned != nullptr)
                             ? *owned
                             : std::shared_ptr<std::string>();
        memo.next_index = want + 1;
        memo.offset = end;
      }
      *r = SubstrValue(a[0], start, end - start);
      return Status::OK();
    }
    *r = Value::Str("");
    return Status::OK();
  });

  // ---- Pattern (a simple glob matcher: '*' wildcard) ----
  add("pattern.matches", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "pattern.matches"));
    MANIMAL_RETURN_IF_ERROR(WantStr(a[1], "pattern.matches"));
    std::string_view s = a[0].str();
    std::string_view pat = a[1].str();
    // Iterative glob match with '*' only.
    size_t si = 0, pi = 0, star = std::string_view::npos, mark = 0;
    while (si < s.size()) {
      if (pi < pat.size() && (pat[pi] == s[si])) {
        ++si;
        ++pi;
      } else if (pi < pat.size() && pat[pi] == '*') {
        star = pi++;
        mark = si;
      } else if (star != std::string_view::npos) {
        pi = star + 1;
        si = ++mark;
      } else {
        *r = Value::Bool(false);
        return Status::OK();
      }
    }
    while (pi < pat.size() && pat[pi] == '*') ++pi;
    *r = Value::Bool(pi == pat.size());
    return Status::OK();
  });

  // ---- Parsing ----
  add("parse.i64", 1, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "parse.i64"));
    *r = Value::I64(ParseNumeral(a[0].str(), [](const char* p) {
      return std::strtoll(p, nullptr, 10);
    }));
    return Status::OK();
  });
  add("parse.f64", 1, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "parse.f64"));
    *r = Value::F64(ParseNumeral(a[0].str(), [](const char* p) {
      return std::strtod(p, nullptr);
    }));
    return Status::OK();
  });

  // ---- Math ----
  add("math.abs", 1, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantNumeric(a[0], "math.abs"));
    if (a[0].is_i64()) {
      *r = Value::I64(std::llabs(a[0].i64()));
    } else {
      *r = Value::F64(std::fabs(a[0].f64()));
    }
    return Status::OK();
  });
  add("math.min", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantNumeric(a[0], "math.min"));
    MANIMAL_RETURN_IF_ERROR(WantNumeric(a[1], "math.min"));
    *r = a[0].Compare(a[1]) <= 0 ? a[0] : a[1];
    return Status::OK();
  });
  add("math.max", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantNumeric(a[0], "math.max"));
    MANIMAL_RETURN_IF_ERROR(WantNumeric(a[1], "math.max"));
    *r = a[0].Compare(a[1]) >= 0 ? a[0] : a[1];
    return Status::OK();
  });

  // ---- URL helpers ----
  add("url.host", 1, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "url.host"));
    std::string_view s = a[0].str();
    size_t start = 0;
    size_t scheme = s.find("://");
    if (scheme != std::string_view::npos) start = scheme + 3;
    size_t slash = s.find('/', start);
    size_t len = (slash == std::string_view::npos) ? std::string_view::npos
                                                   : slash - start;
    *r = SubstrValue(a[0], start, len);
    return Status::OK();
  });

  // ---- Opaque-tuple accessors (AbstractTuple model). Functional:
  // results depend only on the blob argument — but they carry no
  // field-level schema information, so projection analysis cannot see
  // through them. ----
  add("opaque.get_i64", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "opaque.get_i64"));
    MANIMAL_RETURN_IF_ERROR(WantI64(a[1], "opaque.get_i64"));
    MANIMAL_ASSIGN_OR_RETURN(
        Value v, OpaqueTupleCodec::GetField(a[0].str(),
                                            static_cast<int>(a[1].i64())));
    if (!v.is_i64()) {
      return Status::InvalidArgument("opaque.get_i64: field not i64");
    }
    *r = v;
    return Status::OK();
  });
  add("opaque.get_f64", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "opaque.get_f64"));
    MANIMAL_RETURN_IF_ERROR(WantI64(a[1], "opaque.get_f64"));
    MANIMAL_ASSIGN_OR_RETURN(
        Value v, OpaqueTupleCodec::GetField(a[0].str(),
                                            static_cast<int>(a[1].i64())));
    if (!v.is_f64()) {
      return Status::InvalidArgument("opaque.get_f64: field not f64");
    }
    *r = v;
    return Status::OK();
  });
  add("opaque.get_str", 2, true, [](const Value* a, Value* r) {
    MANIMAL_RETURN_IF_ERROR(WantStr(a[0], "opaque.get_str"));
    MANIMAL_RETURN_IF_ERROR(WantI64(a[1], "opaque.get_str"));
    MANIMAL_ASSIGN_OR_RETURN(
        Value v, OpaqueTupleCodec::GetField(a[0].str(),
                                            static_cast<int>(a[1].i64())));
    if (!v.is_str()) {
      return Status::InvalidArgument("opaque.get_str: field not str");
    }
    *r = v;
    return Status::OK();
  });

  // ---- Lists (reduce-side grouped values) ----
  add("list.len", 1, true, [](const Value* a, Value* r) {
    if (!a[0].is_list()) {
      return Status::InvalidArgument("list.len: expected list");
    }
    *r = Value::I64(static_cast<int64_t>(a[0].list().size()));
    return Status::OK();
  });
  // List constructors (multi-column emit values, e.g. pipeline
  // intermediates).
  add("list.pack2", 2, true, [](const Value* a, Value* r) {
    *r = Value::List({a[0], a[1]});
    return Status::OK();
  });
  add("list.pack3", 3, true, [](const Value* a, Value* r) {
    *r = Value::List({a[0], a[1], a[2]});
    return Status::OK();
  });
  add("list.get", 2, true, [](const Value* a, Value* r) {
    if (!a[0].is_list()) {
      return Status::InvalidArgument("list.get: expected list");
    }
    MANIMAL_RETURN_IF_ERROR(WantI64(a[1], "list.get"));
    int64_t i = a[1].i64();
    if (i < 0 || static_cast<size_t>(i) >= a[0].list().size()) {
      return Status::OutOfRange("list.get: index out of range");
    }
    *r = a[0].list()[i];
    return Status::OK();
  });

  // ---- Hashtable: NOT functional. The analyzer has no built-in
  // model of this class (paper §4.1, Benchmark 4). ----
  add("ht.new", 0, false, [](const Value*, Value* r) {
    *r = Value::Handle(std::make_shared<HashtableObject>());
    return Status::OK();
  });
  add("ht.put", 3, false, [](const Value* a, Value* r) {
    HashtableObject* ht = nullptr;
    MANIMAL_RETURN_IF_ERROR(WantHashtable(a[0], &ht, "ht.put"));
    ht->Put(a[1], a[2]);
    *r = Value::Null();
    return Status::OK();
  });
  add("ht.contains", 2, false, [](const Value* a, Value* r) {
    HashtableObject* ht = nullptr;
    MANIMAL_RETURN_IF_ERROR(WantHashtable(a[0], &ht, "ht.contains"));
    *r = Value::Bool(ht->Contains(a[1]));
    return Status::OK();
  });
  add("ht.get", 2, false, [](const Value* a, Value* r) {
    HashtableObject* ht = nullptr;
    MANIMAL_RETURN_IF_ERROR(WantHashtable(a[0], &ht, "ht.get"));
    *r = ht->Get(a[1]);
    return Status::OK();
  });
  add("ht.size", 1, false, [](const Value* a, Value* r) {
    HashtableObject* ht = nullptr;
    MANIMAL_RETURN_IF_ERROR(WantHashtable(a[0], &ht, "ht.size"));
    *r = Value::I64(ht->Size());
    return Status::OK();
  });

  // Static result-kind knowledge (argument-independent return kinds).
  auto set_kind = [this](const char* name, ValueKind kind) {
    for (Builtin& b : builtins_) {
      if (b.name == name) b.result_kind = kind;
    }
  };
  for (const char* name :
       {"str.len", "str.index_of", "str.word_count", "parse.i64",
        "opaque.get_i64", "list.len", "ht.size"}) {
    set_kind(name, ValueKind::kI64);
  }
  for (const char* name :
       {"str.contains", "str.starts_with", "str.ends_with", "str.equals",
        "pattern.matches", "ht.contains"}) {
    set_kind(name, ValueKind::kBool);
  }
  for (const char* name :
       {"str.concat", "str.substr", "str.to_lower", "str.word_at",
        "url.host", "opaque.get_str"}) {
    set_kind(name, ValueKind::kStr);
  }
  set_kind("parse.f64", ValueKind::kF64);
  set_kind("opaque.get_f64", ValueKind::kF64);
}

const BuiltinRegistry& BuiltinRegistry::Get() {
  static const BuiltinRegistry* registry = new BuiltinRegistry();
  return *registry;
}

const Builtin* BuiltinRegistry::FindByName(std::string_view name) const {
  for (const Builtin& b : builtins_) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

const Builtin* BuiltinRegistry::FindById(int id) const {
  if (id < 0 || id >= size()) return nullptr;
  return &builtins_[id];
}

}  // namespace manimal::mril
