// Static well-formedness verification for MRIL programs, run before
// both execution and analysis (the analyzer assumes verified input).
//
// Checks, per function:
//   * operands are in range (constants, params, locals, members,
//     builtins, jump targets, field indexes against the value schema);
//   * GetField is only applied to the map's record parameter when the
//     program declares a structured (non-opaque) value schema;
//   * stack discipline: the operand-stack depth at every instruction is
//     consistent across all control-flow paths, never goes negative,
//     and is exactly zero at every jump target and at every return.
//     (This is the property that lets the analyzer recover symbolic
//     expressions block-locally, like JVM stack-map frames.)

#ifndef MANIMAL_MRIL_VERIFIER_H_
#define MANIMAL_MRIL_VERIFIER_H_

#include "common/status.h"
#include "mril/program.h"

namespace manimal::mril {

Status VerifyFunction(const Program& program, const Function& fn);
Status VerifyProgram(const Program& program);

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_VERIFIER_H_
