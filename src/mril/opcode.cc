#include "mril/opcode.h"

#include <array>

#include "common/check.h"

namespace manimal::mril {

namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
#define MANIMAL_OPCODE_INFO(name, mnemonic, has_operand, pops, pushes) \
  OpcodeInfo{mnemonic, has_operand, pops, pushes},
    MANIMAL_OPCODE_LIST(MANIMAL_OPCODE_INFO)
#undef MANIMAL_OPCODE_INFO
}};

}  // namespace

const OpcodeInfo& GetOpcodeInfo(Opcode op) {
  int idx = static_cast<int>(op);
  MANIMAL_CHECK(idx >= 0 && idx < kNumOpcodes);
  return kOpcodeTable[idx];
}

std::optional<Opcode> OpcodeFromMnemonic(std::string_view mnemonic) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    if (kOpcodeTable[i].mnemonic == mnemonic) {
      return static_cast<Opcode>(i);
    }
  }
  return std::nullopt;
}

}  // namespace manimal::mril
