#include "mril/builder.h"

#include "common/check.h"
#include "mril/builtins.h"

namespace manimal::mril {

FunctionBuilder::FunctionBuilder(ProgramBuilder* parent, std::string name,
                                 int num_params)
    : parent_(parent) {
  fn_.name = std::move(name);
  fn_.num_params = num_params;
}

FunctionBuilder& FunctionBuilder::Push(Opcode op, int32_t operand) {
  fn_.code.push_back(Instruction{op, operand});
  return *this;
}

FunctionBuilder& FunctionBuilder::LoadConst(const Value& v) {
  return Push(Opcode::kLoadConst, parent_->program_.AddConstant(v));
}

FunctionBuilder& FunctionBuilder::LoadParam(int idx) {
  MANIMAL_CHECK(idx >= 0 && idx < fn_.num_params);
  return Push(Opcode::kLoadParam, idx);
}

FunctionBuilder& FunctionBuilder::LoadLocal(int slot) {
  MANIMAL_CHECK(slot >= 0 && slot < fn_.num_locals);
  return Push(Opcode::kLoadLocal, slot);
}

FunctionBuilder& FunctionBuilder::StoreLocal(int slot) {
  MANIMAL_CHECK(slot >= 0 && slot < fn_.num_locals);
  return Push(Opcode::kStoreLocal, slot);
}

FunctionBuilder& FunctionBuilder::LoadMember(std::string_view name) {
  auto idx = parent_->program_.MemberIndex(name);
  MANIMAL_CHECK_MSG(idx.has_value(), "unknown member variable");
  return Push(Opcode::kLoadMember, *idx);
}

FunctionBuilder& FunctionBuilder::StoreMember(std::string_view name) {
  auto idx = parent_->program_.MemberIndex(name);
  MANIMAL_CHECK_MSG(idx.has_value(), "unknown member variable");
  return Push(Opcode::kStoreMember, *idx);
}

FunctionBuilder& FunctionBuilder::GetField(std::string_view field_name) {
  const Program& p = parent_->program_;
  MANIMAL_CHECK_MSG(p.value_param_kind == ValueParamKind::kRecord,
                    "GetField on opaque value parameter");
  auto idx = p.value_schema.FieldIndex(field_name);
  MANIMAL_CHECK_MSG(idx.has_value(), "unknown field name");
  return Push(Opcode::kGetField, *idx);
}

FunctionBuilder& FunctionBuilder::GetFieldIndex(int idx) {
  return Push(Opcode::kGetField, idx);
}

FunctionBuilder& FunctionBuilder::Dup() { return Push(Opcode::kDup); }
FunctionBuilder& FunctionBuilder::Pop() { return Push(Opcode::kPop); }
FunctionBuilder& FunctionBuilder::Swap() { return Push(Opcode::kSwap); }
FunctionBuilder& FunctionBuilder::Add() { return Push(Opcode::kAdd); }
FunctionBuilder& FunctionBuilder::Sub() { return Push(Opcode::kSub); }
FunctionBuilder& FunctionBuilder::Mul() { return Push(Opcode::kMul); }
FunctionBuilder& FunctionBuilder::Div() { return Push(Opcode::kDiv); }
FunctionBuilder& FunctionBuilder::Mod() { return Push(Opcode::kMod); }
FunctionBuilder& FunctionBuilder::Neg() { return Push(Opcode::kNeg); }
FunctionBuilder& FunctionBuilder::CmpLt() { return Push(Opcode::kCmpLt); }
FunctionBuilder& FunctionBuilder::CmpLe() { return Push(Opcode::kCmpLe); }
FunctionBuilder& FunctionBuilder::CmpGt() { return Push(Opcode::kCmpGt); }
FunctionBuilder& FunctionBuilder::CmpGe() { return Push(Opcode::kCmpGe); }
FunctionBuilder& FunctionBuilder::CmpEq() { return Push(Opcode::kCmpEq); }
FunctionBuilder& FunctionBuilder::CmpNe() { return Push(Opcode::kCmpNe); }
FunctionBuilder& FunctionBuilder::And() { return Push(Opcode::kAnd); }
FunctionBuilder& FunctionBuilder::Or() { return Push(Opcode::kOr); }
FunctionBuilder& FunctionBuilder::Not() { return Push(Opcode::kNot); }

FunctionBuilder& FunctionBuilder::Jmp(std::string_view label) {
  pending_jumps_.emplace_back(static_cast<int>(fn_.code.size()),
                              std::string(label));
  return Push(Opcode::kJmp, -1);
}

FunctionBuilder& FunctionBuilder::JmpIfTrue(std::string_view label) {
  pending_jumps_.emplace_back(static_cast<int>(fn_.code.size()),
                              std::string(label));
  return Push(Opcode::kJmpIfTrue, -1);
}

FunctionBuilder& FunctionBuilder::JmpIfFalse(std::string_view label) {
  pending_jumps_.emplace_back(static_cast<int>(fn_.code.size()),
                              std::string(label));
  return Push(Opcode::kJmpIfFalse, -1);
}

FunctionBuilder& FunctionBuilder::Label(std::string_view label) {
  auto [it, inserted] =
      labels_.emplace(std::string(label), static_cast<int>(fn_.code.size()));
  MANIMAL_CHECK_MSG(inserted, "duplicate label");
  return *this;
}

FunctionBuilder& FunctionBuilder::Call(std::string_view builtin_name) {
  const Builtin* b = BuiltinRegistry::Get().FindByName(builtin_name);
  MANIMAL_CHECK_MSG(b != nullptr, "unknown builtin");
  return Push(Opcode::kCall, b->id);
}

FunctionBuilder& FunctionBuilder::Emit() { return Push(Opcode::kEmit); }
FunctionBuilder& FunctionBuilder::Log() { return Push(Opcode::kLog); }
FunctionBuilder& FunctionBuilder::Ret() { return Push(Opcode::kReturn); }

int FunctionBuilder::NewLocal() { return fn_.num_locals++; }

Function FunctionBuilder::Finish() {
  for (const auto& [pc, label] : pending_jumps_) {
    auto it = labels_.find(label);
    MANIMAL_CHECK_MSG(it != labels_.end(), "unresolved label");
    fn_.code[pc].operand = it->second;
  }
  // A label may point one past the last instruction; give it a landing
  // pad.
  bool needs_pad = false;
  for (const auto& [label, target] : labels_) {
    if (target == static_cast<int>(fn_.code.size())) needs_pad = true;
  }
  if (needs_pad || fn_.code.empty() ||
      fn_.code.back().op != Opcode::kReturn) {
    fn_.code.push_back(Instruction{Opcode::kReturn, 0});
  }
  return fn_;
}

ProgramBuilder::ProgramBuilder(std::string name) {
  program_.name = std::move(name);
}

ProgramBuilder& ProgramBuilder::SetKeyType(FieldType t) {
  program_.key_type = t;
  return *this;
}

ProgramBuilder& ProgramBuilder::SetValueSchema(Schema schema) {
  MANIMAL_CHECK_MSG(!schema.opaque(), "use SetOpaqueValue()");
  program_.value_param_kind = ValueParamKind::kRecord;
  program_.value_schema = std::move(schema);
  return *this;
}

ProgramBuilder& ProgramBuilder::SetOpaqueValue() {
  program_.value_param_kind = ValueParamKind::kOpaque;
  program_.value_schema = Schema::Opaque();
  return *this;
}

ProgramBuilder& ProgramBuilder::RequireSortedOutput() {
  program_.requires_sorted_output = true;
  return *this;
}

ProgramBuilder& ProgramBuilder::AddMember(std::string name, Value initial) {
  program_.members.push_back(MemberVar{std::move(name), std::move(initial)});
  return *this;
}

FunctionBuilder& ProgramBuilder::Map() {
  if (map_builder_ == nullptr) {
    map_builder_.reset(new FunctionBuilder(this, "map", 2));
  }
  return *map_builder_;
}

FunctionBuilder& ProgramBuilder::Reduce() {
  if (reduce_builder_ == nullptr) {
    reduce_builder_.reset(new FunctionBuilder(this, "reduce", 2));
  }
  return *reduce_builder_;
}

Program ProgramBuilder::Build() {
  MANIMAL_CHECK_MSG(map_builder_ != nullptr, "program has no map()");
  program_.map_fn = map_builder_->Finish();
  if (reduce_builder_ != nullptr) {
    program_.reduce_fn = reduce_builder_->Finish();
  }
  return program_;
}

}  // namespace manimal::mril
