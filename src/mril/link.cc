#include "mril/link.h"

#include <algorithm>

#include "common/strings.h"

namespace manimal::mril {

namespace {

constexpr std::string_view kLOpNames[] = {
#define MANIMAL_LOP_NAME(name) #name,
    MANIMAL_LOP_LIST(MANIMAL_LOP_NAME)
#undef MANIMAL_LOP_NAME
};

Status LinkErr(const Function& fn, int pc, const std::string& msg) {
  return Status::InvalidArgument(StrPrintf(
      "link %s@%d: %s", fn.name.c_str(), pc, msg.c_str()));
}

LOp CmpBrOp(Opcode cmp) {
  switch (cmp) {
    case Opcode::kCmpLt:
      return LOp::kCmpLtBr;
    case Opcode::kCmpLe:
      return LOp::kCmpLeBr;
    case Opcode::kCmpGt:
      return LOp::kCmpGtBr;
    case Opcode::kCmpGe:
      return LOp::kCmpGeBr;
    case Opcode::kCmpEq:
      return LOp::kCmpEqBr;
    case Opcode::kCmpNe:
      return LOp::kCmpNeBr;
    default:
      return LOp::kFellOffEnd;  // not a comparison; never asked
  }
}

// Straight Opcode -> LOp renames (everything except kNop, get_field
// resolution, and the fusion pairs handled inline below).
LOp PlainLOp(Opcode op) {
  switch (op) {
    case Opcode::kLoadConst:
      return LOp::kLoadConst;
    case Opcode::kLoadParam:
      return LOp::kLoadParam;
    case Opcode::kLoadLocal:
      return LOp::kLoadLocal;
    case Opcode::kStoreLocal:
      return LOp::kStoreLocal;
    case Opcode::kLoadMember:
      return LOp::kLoadMember;
    case Opcode::kStoreMember:
      return LOp::kStoreMember;
    case Opcode::kGetField:
      return LOp::kGetField;
    case Opcode::kDup:
      return LOp::kDup;
    case Opcode::kPop:
      return LOp::kPop;
    case Opcode::kSwap:
      return LOp::kSwap;
    case Opcode::kAdd:
      return LOp::kAdd;
    case Opcode::kSub:
      return LOp::kSub;
    case Opcode::kMul:
      return LOp::kMul;
    case Opcode::kDiv:
      return LOp::kDiv;
    case Opcode::kMod:
      return LOp::kMod;
    case Opcode::kNeg:
      return LOp::kNeg;
    case Opcode::kCmpLt:
      return LOp::kCmpLt;
    case Opcode::kCmpLe:
      return LOp::kCmpLe;
    case Opcode::kCmpGt:
      return LOp::kCmpGt;
    case Opcode::kCmpGe:
      return LOp::kCmpGe;
    case Opcode::kCmpEq:
      return LOp::kCmpEq;
    case Opcode::kCmpNe:
      return LOp::kCmpNe;
    case Opcode::kAnd:
      return LOp::kAnd;
    case Opcode::kOr:
      return LOp::kOr;
    case Opcode::kNot:
      return LOp::kNot;
    case Opcode::kJmp:
      return LOp::kJmp;
    case Opcode::kJmpIfTrue:
      return LOp::kJmpIfTrue;
    case Opcode::kJmpIfFalse:
      return LOp::kJmpIfFalse;
    case Opcode::kCall:
      return LOp::kCall;
    case Opcode::kEmit:
      return LOp::kEmit;
    case Opcode::kLog:
      return LOp::kLog;
    case Opcode::kReturn:
      return LOp::kReturn;
    case Opcode::kNop:
      return LOp::kFellOffEnd;  // dropped; never asked
  }
  return LOp::kFellOffEnd;
}

Result<LinkedFunction> LinkFunction(const Program& program,
                                    const Function& fn, bool is_map,
                                    const LinkOptions& options) {
  const int n = static_cast<int>(fn.code.size());
  const bool remap =
      is_map && !options.field_remap.empty();
  const BuiltinRegistry& registry = BuiltinRegistry::Get();

  // Which old pcs are jump targets (fusing across one would let a
  // branch land in the middle of a superinstruction).
  std::vector<char> is_target(n + 1, 0);
  for (const Instruction& inst : fn.code) {
    if (!IsBranch(inst.op)) continue;
    if (inst.operand >= 0 && inst.operand <= n) is_target[inst.operand] = 1;
  }

  LinkedFunction out;
  out.source = &fn;
  out.num_locals = fn.num_locals;
  out.code.reserve(n + 1);

  // old pc -> linked index, for branch patching. Dropped/fused old pcs
  // map to the linked instruction that replaces them.
  std::vector<int32_t> old2new(n + 1, 0);

  for (int pc = 0; pc < n; ++pc) {
    const Instruction& inst = fn.code[pc];
    old2new[pc] = static_cast<int32_t>(out.code.size());
    LInsn li;
    li.a = inst.operand;

    switch (inst.op) {
      case Opcode::kNop:
        continue;  // dropped; old2new already points at the successor
      case Opcode::kLoadConst: {
        if (inst.operand < 0 ||
            inst.operand >= static_cast<int>(program.constants.size())) {
          return LinkErr(fn, pc, "constant index out of range");
        }
        li.op = LOp::kLoadConst;
        li.constant = &program.constants[inst.operand];
        break;
      }
      case Opcode::kLoadParam: {
        if (inst.operand < 0 || inst.operand >= fn.num_params) {
          return LinkErr(fn, pc, "param index out of range");
        }
        // LoadParam p; GetField f  ->  kLoadParamField — only when the
        // GetField survives remap resolution as a plain field read.
        if (options.enable_superinstructions && pc + 1 < n &&
            fn.code[pc + 1].op == Opcode::kGetField &&
            !is_target[pc + 1]) {
          int idx = fn.code[pc + 1].operand;
          bool plain = true;
          if (remap) {
            if (idx < 0 ||
                idx >= static_cast<int>(options.field_remap.size()) ||
                options.field_remap[idx] < 0) {
              plain = false;
            } else {
              idx = options.field_remap[idx];
            }
          }
          if (plain && idx >= 0) {
            li.op = LOp::kLoadParamField;
            li.b = idx;
            out.code.push_back(li);
            old2new[pc + 1] = old2new[pc];
            ++out.num_fused;
            ++pc;
            continue;
          }
        }
        li.op = LOp::kLoadParam;
        break;
      }
      case Opcode::kLoadLocal:
      case Opcode::kStoreLocal: {
        if (inst.operand < 0 || inst.operand >= fn.num_locals) {
          return LinkErr(fn, pc, "local index out of range");
        }
        li.op = PlainLOp(inst.op);
        break;
      }
      case Opcode::kLoadMember:
      case Opcode::kStoreMember: {
        if (inst.operand < 0 ||
            inst.operand >= static_cast<int>(program.members.size())) {
          return LinkErr(fn, pc, "member index out of range");
        }
        li.op = PlainLOp(inst.op);
        break;
      }
      case Opcode::kGetField: {
        li.op = LOp::kGetField;
        if (remap) {
          int idx = inst.operand;
          if (idx < 0 ||
              idx >= static_cast<int>(options.field_remap.size())) {
            li.op = LOp::kGetFieldBadRemap;  // Internal error if run
          } else if (options.field_remap[idx] < 0) {
            li.op = LOp::kGetFieldNull;  // projected away: observe null
          } else {
            li.a = options.field_remap[idx];
          }
        }
        break;
      }
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpGt:
      case Opcode::kCmpGe:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe: {
        // Cmp; JmpIfTrue/False t  ->  kCmp??Br(t, sense)
        if (options.enable_superinstructions && pc + 1 < n &&
            IsConditionalBranch(fn.code[pc + 1].op) && !is_target[pc + 1]) {
          li.op = CmpBrOp(inst.op);
          li.a = fn.code[pc + 1].operand;  // old target; patched below
          li.b = fn.code[pc + 1].op == Opcode::kJmpIfTrue ? 1 : 0;
          out.code.push_back(li);
          old2new[pc + 1] = old2new[pc];
          ++out.num_fused;
          ++pc;
          continue;
        }
        li.op = PlainLOp(inst.op);
        break;
      }
      case Opcode::kCall: {
        const Builtin* b = registry.FindById(inst.operand);
        if (b == nullptr) return LinkErr(fn, pc, "unknown builtin id");
        li.op = LOp::kCall;
        li.a = b->arity;
        li.b = inst.operand;
        li.builtin = b;
        break;
      }
      default:
        li.op = PlainLOp(inst.op);
        break;
    }
    out.code.push_back(li);
  }
  old2new[n] = static_cast<int32_t>(out.code.size());

  LInsn sentinel;
  sentinel.op = LOp::kFellOffEnd;
  out.code.push_back(sentinel);
  const int32_t end = static_cast<int32_t>(out.code.size() - 1);

  // Patch branch targets old pc -> linked index. Out-of-range targets
  // (possible only in unverified programs) route to the sentinel,
  // which reports the same error falling off the end does.
  for (LInsn& li : out.code) {
    switch (li.op) {
      case LOp::kJmp:
      case LOp::kJmpIfTrue:
      case LOp::kJmpIfFalse:
      case LOp::kCmpLtBr:
      case LOp::kCmpLeBr:
      case LOp::kCmpGtBr:
      case LOp::kCmpGeBr:
      case LOp::kCmpEqBr:
      case LOp::kCmpNeBr:
        li.a = (li.a >= 0 && li.a <= n) ? old2new[li.a] : end;
        break;
      default:
        break;
    }
  }

  // Operand-stack high-water mark, by the same worklist dataflow the
  // verifier runs (depth is a function of pc; unreachable code is
  // tolerated — it links but never executes, so its depth is moot).
  // Anything inconsistent is rejected instead of trusted: the
  // interpreter indexes a flat buffer sized by this bound.
  std::vector<int> depth_at(n, -1);
  std::vector<int> worklist;
  if (n > 0) {
    depth_at[0] = 0;
    worklist.push_back(0);
  }
  int max_depth = 0;
  while (!worklist.empty()) {
    int pc = worklist.back();
    worklist.pop_back();
    const Instruction& inst = fn.code[pc];
    const OpcodeInfo& info = GetOpcodeInfo(inst.op);
    int pops = info.pops;
    if (inst.op == Opcode::kCall) {
      pops = registry.FindById(inst.operand)->arity;
    }
    int depth = depth_at[pc];
    if (depth < pops) return LinkErr(fn, pc, "stack underflow");
    int after = depth - pops + info.pushes;
    max_depth = std::max(max_depth, after);

    auto propagate = [&](int target, int d) -> Status {
      if (target < 0 || target >= n) {
        // Verified programs can't; the linked branch already routes to
        // the sentinel, so just skip the edge.
        return Status::OK();
      }
      if (depth_at[target] == -1) {
        depth_at[target] = d;
        worklist.push_back(target);
        return Status::OK();
      }
      if (depth_at[target] != d) {
        return LinkErr(fn, target, "inconsistent stack depth");
      }
      return Status::OK();
    };

    switch (inst.op) {
      case Opcode::kReturn:
        if (after != 0) return LinkErr(fn, pc, "return with non-empty stack");
        break;
      case Opcode::kJmp:
        if (after != 0) return LinkErr(fn, pc, "jump with non-empty stack");
        MANIMAL_RETURN_IF_ERROR(propagate(inst.operand, 0));
        break;
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse:
        if (after != 0) return LinkErr(fn, pc, "jump with non-empty stack");
        MANIMAL_RETURN_IF_ERROR(propagate(inst.operand, 0));
        MANIMAL_RETURN_IF_ERROR(propagate(pc + 1, 0));
        break;
      default:
        MANIMAL_RETURN_IF_ERROR(propagate(pc + 1, after));
        break;
    }
  }
  out.max_stack = max_depth;
  return out;
}

}  // namespace

std::string_view LOpName(LOp op) {
  int i = static_cast<int>(op);
  if (i < 0 || i >= kNumLOps) return "?";
  return kLOpNames[i];
}

Result<LinkedProgram> Link(const Program& program,
                           const LinkOptions& options) {
  LinkedProgram out;
  out.program = &program;
  MANIMAL_ASSIGN_OR_RETURN(
      out.map_fn,
      LinkFunction(program, program.map_fn, /*is_map=*/true, options));
  if (program.reduce_fn.has_value()) {
    out.has_reduce = true;
    MANIMAL_ASSIGN_OR_RETURN(
        out.reduce_fn, LinkFunction(program, *program.reduce_fn,
                                    /*is_map=*/false, options));
  }
  return out;
}

}  // namespace manimal::mril
