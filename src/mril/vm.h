// The MRIL interpreter — the part of the execution fabric that actually
// runs user map()/reduce() code over records.
//
// A VmInstance holds the per-task runtime state: the program's member
// variables (persisting across map() invocations within a task, which
// is what makes Figure 2's numMapsRun pattern observable), the emit
// sink, the log sink, and step limits.

#ifndef MANIMAL_MRIL_VM_H_
#define MANIMAL_MRIL_VM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mril/program.h"

namespace manimal::mril {

// Receives (key, value) pairs emitted by user code.
using EmitSink = std::function<Status(const Value& key, const Value& value)>;

// Receives values passed to the `log` side-effect instruction.
using LogSink = std::function<void(const Value& value)>;

struct VmOptions {
  // Abort an invocation after this many executed instructions (guards
  // against accidental infinite loops in user code).
  int64_t max_steps_per_invocation = 50'000'000;

  // When set (non-empty), get_field indexes on the map value parameter
  // are remapped for projected input files: field_remap[original_field]
  // is the slot of that field in the runtime (projected) record, or -1
  // if the field was projected away. The optimizer only projects away
  // fields it proved the program never reads, so a -1 access is an
  // internal error.
  std::vector<int> field_remap;
};

class VmInstance {
 public:
  // The program must have passed VerifyProgram.
  VmInstance(const Program* program, VmOptions options = {});

  // Flushes accumulated telemetry ("mril.instructions",
  // "mril.invocations", "mril.builtin.<name>" counters) to the
  // metrics registry.
  ~VmInstance();

  void set_emit_sink(EmitSink sink) { emit_ = std::move(sink); }
  void set_log_sink(LogSink sink) { log_ = std::move(sink); }

  // Runs map(key, value). `value` is the deserialized record (a list
  // value) or the opaque blob (a str value).
  Status InvokeMap(const Value& key, const Value& value);

  // Runs reduce(key, values).
  Status InvokeReduce(const Value& key, const Value& values);

  // Member-variable state (tests inspect this; Fig. 2 scenarios).
  const Value& member(int idx) const { return members_.at(idx); }
  void ResetMembers();

  int64_t total_steps() const { return total_steps_; }
  int64_t map_invocations() const { return map_invocations_; }

 private:
  Status Invoke(const Function& fn, const Value& p0, const Value& p1);

  const Program* program_;
  VmOptions options_;
  std::vector<Value> members_;
  EmitSink emit_;
  LogSink log_;
  int64_t total_steps_ = 0;
  int64_t map_invocations_ = 0;
  int64_t reduce_invocations_ = 0;
  // Per-builtin-id call counts, flushed to named counters at
  // destruction (a plain array increment on the kCall hot path).
  std::vector<int64_t> builtin_calls_;
};

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_VM_H_
