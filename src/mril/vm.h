// The MRIL interpreter — the part of the execution fabric that actually
// runs user map()/reduce() code over records.
//
// A VmInstance holds the per-task runtime state: the program's member
// variables (persisting across map() invocations within a task, which
// is what makes Figure 2's numMapsRun pattern observable), the emit
// sink, the log sink, and step limits.
//
// Construction links the program (see mril/link.h) into a resolved
// instruction stream, and each invocation executes that stream with
// direct-threaded (computed-goto) dispatch where the compiler supports
// it, or a portable switch loop otherwise. Operand stack and locals
// live in flat buffers sized once from the link step's exact
// high-water marks, and string temporaries (concats) go into a
// per-instance ValueArena that is reset — not freed — at each
// invocation entry, so the per-record hot path performs no heap
// allocation. See docs/mril.md "VM internals".

#ifndef MANIMAL_MRIL_VM_H_
#define MANIMAL_MRIL_VM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mril/link.h"
#include "mril/program.h"

// Computed-goto dispatch needs the GNU labels-as-values extension;
// define MANIMAL_VM_SWITCH_DISPATCH (cmake -DMANIMAL_VM_SWITCH_DISPATCH=ON)
// to force the portable switch loop even where the extension exists.
#if !defined(MANIMAL_VM_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define MANIMAL_VM_THREADED_DISPATCH 1
#else
#define MANIMAL_VM_THREADED_DISPATCH 0
#endif

namespace manimal::mril {

// Receives (key, value) pairs emitted by user code. The VM promotes
// borrowed strings with EnsureOwned() before calling the sink, so a
// sink may retain the Values.
using EmitSink = std::function<Status(const Value& key, const Value& value)>;

// Receives values passed to the `log` side-effect instruction
// (promoted like emits).
using LogSink = std::function<void(const Value& value)>;

enum class VmDispatch {
  kAuto,      // threaded where available, else switch
  kThreaded,  // computed-goto (falls back to switch if unavailable)
  kSwitch,    // portable switch loop
};

struct VmOptions {
  // Abort an invocation after this many executed instructions (guards
  // against accidental infinite loops in user code). Counted in
  // *linked* instructions: a fused superinstruction is one step.
  int64_t max_steps_per_invocation = 50'000'000;

  // When set (non-empty), get_field indexes on the map value parameter
  // are remapped for projected input files: field_remap[original_field]
  // is the slot of that field in the runtime (projected) record, or -1
  // if the field was projected away. The optimizer only projects away
  // fields it proved the program never reads, so a -1 access is an
  // internal error. Folded into the instruction stream at link time.
  std::vector<int> field_remap;

  // Dispatch backend. The MANIMAL_VM_DISPATCH environment variable
  // ("threaded" / "switch") overrides kAuto at construction.
  VmDispatch dispatch = VmDispatch::kAuto;
};

// True when this build can execute with computed-goto dispatch.
constexpr bool ThreadedDispatchAvailable() {
  return MANIMAL_VM_THREADED_DISPATCH != 0;
}

class VmInstance {
 public:
  // The program must have passed VerifyProgram. (Programs that
  // violate verifier invariants fail to link; Invoke* then returns
  // the link error instead of executing.)
  VmInstance(const Program* program, VmOptions options = {});

  // Flushes accumulated telemetry ("mril.instructions",
  // "mril.invocations", "mril.builtin.<name>" counters) to the
  // metrics registry through pointers cached once per process.
  ~VmInstance();

  void set_emit_sink(EmitSink sink) { emit_ = std::move(sink); }
  void set_log_sink(LogSink sink) { log_ = std::move(sink); }

  // Runs map(key, value). `value` is the deserialized record (a list
  // value) or the opaque blob (a str value). Borrowed strings inside
  // `value` must stay valid for the duration of the call only.
  Status InvokeMap(const Value& key, const Value& value);

  // Runs reduce(key, values).
  Status InvokeReduce(const Value& key, const Value& values);

  // Member-variable state (tests inspect this; Fig. 2 scenarios).
  const Value& member(int idx) const { return members_.at(idx); }
  void ResetMembers();

  int64_t total_steps() const { return total_steps_; }
  int64_t map_invocations() const { return map_invocations_; }

  // Introspection for tests/telemetry.
  const LinkedProgram& linked() const { return linked_; }
  const Status& link_status() const { return link_status_; }
  // Which backend Invoke* actually uses after resolving kAuto, the
  // env override, and build availability.
  VmDispatch effective_dispatch() const { return dispatch_; }

 private:
  Status Invoke(const LinkedFunction& fn, const Value& p0, const Value& p1);

  // The interpreter loop, generated twice from vm_loop.inc.
#if MANIMAL_VM_THREADED_DISPATCH
  Status RunThreaded(const LinkedFunction& fn, const Value* const* params);
#endif
  Status RunSwitch(const LinkedFunction& fn, const Value* const* params);

  const Program* program_;
  VmOptions options_;
  LinkedProgram linked_;
  Status link_status_;
  VmDispatch dispatch_ = VmDispatch::kSwitch;
  std::vector<Value> members_;
  EmitSink emit_;
  LogSink log_;
  // Flat invocation state, sized once at construction from the linked
  // functions' exact stack/locals bounds and reused across records.
  std::vector<Value> stack_;
  std::vector<Value> locals_;
  ValueArena arena_;
  int64_t total_steps_ = 0;
  int64_t map_invocations_ = 0;
  int64_t reduce_invocations_ = 0;
  // Per-builtin-id call counts, flushed to named counters at
  // destruction (a plain array increment on the kCall hot path).
  std::vector<int64_t> builtin_calls_;
};

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_VM_H_
