#include "mril/program.h"

#include "common/strings.h"
#include "mril/builtins.h"

namespace manimal::mril {

int Program::AddConstant(const Value& v) {
  for (size_t i = 0; i < constants.size(); ++i) {
    if (!constants[i].is_handle() && !constants[i].is_list() &&
        constants[i].kind() == v.kind() && constants[i] == v) {
      return static_cast<int>(i);
    }
  }
  constants.push_back(v);
  return static_cast<int>(constants.size() - 1);
}

std::optional<int> Program::MemberIndex(std::string_view name) const {
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::string FormatInstruction(const Program& program, const Function& fn,
                              int pc) {
  const Instruction& inst = fn.code.at(pc);
  const OpcodeInfo& info = GetOpcodeInfo(inst.op);
  std::string out = StrPrintf("%4d: %-14s", pc,
                              std::string(info.mnemonic).c_str());
  if (!info.has_operand) return out;
  out += StrPrintf(" %d", inst.operand);
  // Resolve what the operand means for the reader.
  switch (inst.op) {
    case Opcode::kLoadConst:
      if (inst.operand >= 0 &&
          inst.operand < static_cast<int>(program.constants.size())) {
        out += "    ; " + program.constants[inst.operand].ToString();
      }
      break;
    case Opcode::kLoadMember:
    case Opcode::kStoreMember:
      if (inst.operand >= 0 &&
          inst.operand < static_cast<int>(program.members.size())) {
        out += "    ; " + program.members[inst.operand].name;
      }
      break;
    case Opcode::kGetField:
      if (!program.value_schema.opaque() && inst.operand >= 0 &&
          inst.operand < program.value_schema.num_fields()) {
        out += "    ; ." + program.value_schema.field(inst.operand).name;
      }
      break;
    case Opcode::kCall: {
      const Builtin* b = BuiltinRegistry::Get().FindById(inst.operand);
      if (b != nullptr) out += "    ; " + b->name;
      break;
    }
    default:
      break;
  }
  return out;
}

std::string DisassembleFunction(const Program& program, const Function& fn) {
  std::string out;
  out += StrPrintf(".func %s params=%d locals=%d\n", fn.name.c_str(),
                   fn.num_params, fn.num_locals);
  for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
    out += FormatInstruction(program, fn, pc);
    out += "\n";
  }
  out += ".endfunc\n";
  return out;
}

std::string Program::Disassemble() const {
  std::string out = ".program " + name + "\n";
  out += StrPrintf(".key_type %s\n", FieldTypeName(key_type));
  if (value_param_kind == ValueParamKind::kOpaque) {
    out += ".value_schema <opaque>\n";
  } else {
    out += ".value_schema " + value_schema.ToString() + "\n";
  }
  if (requires_sorted_output) out += ".requires_sorted_output\n";
  for (const MemberVar& m : members) {
    out += ".member " + m.name + " = " + m.initial_value.ToString() + "\n";
  }
  for (size_t i = 0; i < constants.size(); ++i) {
    out += StrPrintf(".const %zu = %s\n", i, constants[i].ToString().c_str());
  }
  out += DisassembleFunction(*this, map_fn);
  if (reduce_fn.has_value()) {
    out += DisassembleFunction(*this, *reduce_fn);
  }
  return out;
}

}  // namespace manimal::mril
