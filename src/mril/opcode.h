// MRIL opcode set.
//
// MRIL ("MapReduce Intermediate Language") is the compiled form of user
// map()/reduce() functions in this reproduction. It plays the role that
// JVM bytecode plays in the paper: the Manimal analyzer receives only
// these compiled instructions — no annotations, no source — and must
// recover the program's data semantics from them (paper §3).
//
// The machine is a stack machine. Operands are single 32-bit immediates
// (constant-pool indexes, parameter/local/member slots, field indexes,
// jump targets, builtin ids).

#ifndef MANIMAL_MRIL_OPCODE_H_
#define MANIMAL_MRIL_OPCODE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace manimal::mril {

// X(name, mnemonic, has_operand, pops, pushes)
// pops == -1 means "determined dynamically" (CALL).
#define MANIMAL_OPCODE_LIST(X)                       \
  X(kNop, "nop", false, 0, 0)                        \
  X(kLoadConst, "load_const", true, 0, 1)            \
  X(kLoadParam, "load_param", true, 0, 1)            \
  X(kLoadLocal, "load_local", true, 0, 1)            \
  X(kStoreLocal, "store_local", true, 1, 0)          \
  X(kLoadMember, "load_member", true, 0, 1)          \
  X(kStoreMember, "store_member", true, 1, 0)        \
  X(kGetField, "get_field", true, 1, 1)              \
  X(kDup, "dup", false, 1, 2)                        \
  X(kPop, "pop", false, 1, 0)                        \
  X(kSwap, "swap", false, 2, 2)                      \
  X(kAdd, "add", false, 2, 1)                        \
  X(kSub, "sub", false, 2, 1)                        \
  X(kMul, "mul", false, 2, 1)                        \
  X(kDiv, "div", false, 2, 1)                        \
  X(kMod, "mod", false, 2, 1)                        \
  X(kNeg, "neg", false, 1, 1)                        \
  X(kCmpLt, "cmp_lt", false, 2, 1)                   \
  X(kCmpLe, "cmp_le", false, 2, 1)                   \
  X(kCmpGt, "cmp_gt", false, 2, 1)                   \
  X(kCmpGe, "cmp_ge", false, 2, 1)                   \
  X(kCmpEq, "cmp_eq", false, 2, 1)                   \
  X(kCmpNe, "cmp_ne", false, 2, 1)                   \
  X(kAnd, "and", false, 2, 1)                        \
  X(kOr, "or", false, 2, 1)                          \
  X(kNot, "not", false, 1, 1)                        \
  X(kJmp, "jmp", true, 0, 0)                         \
  X(kJmpIfTrue, "jmp_if_true", true, 1, 0)           \
  X(kJmpIfFalse, "jmp_if_false", true, 1, 0)         \
  X(kCall, "call", true, -1, 1)                      \
  X(kEmit, "emit", false, 2, 0)                      \
  X(kLog, "log", false, 1, 0)                        \
  X(kReturn, "return", false, 0, 0)

enum class Opcode : uint8_t {
#define MANIMAL_OPCODE_ENUM(name, mnemonic, has_operand, pops, pushes) name,
  MANIMAL_OPCODE_LIST(MANIMAL_OPCODE_ENUM)
#undef MANIMAL_OPCODE_ENUM
};

constexpr int kNumOpcodes = 0
#define MANIMAL_OPCODE_COUNT(name, mnemonic, has_operand, pops, pushes) +1
    MANIMAL_OPCODE_LIST(MANIMAL_OPCODE_COUNT)
#undef MANIMAL_OPCODE_COUNT
    ;

// Static per-opcode metadata.
struct OpcodeInfo {
  std::string_view mnemonic;
  bool has_operand;
  int pops;    // -1: dynamic (kCall: builtin arity)
  int pushes;  // for kCall: 1 (builtins always push a result, maybe null)
};

const OpcodeInfo& GetOpcodeInfo(Opcode op);

// Looks up an opcode by its assembler mnemonic.
std::optional<Opcode> OpcodeFromMnemonic(std::string_view mnemonic);

inline bool IsBranch(Opcode op) {
  return op == Opcode::kJmp || op == Opcode::kJmpIfTrue ||
         op == Opcode::kJmpIfFalse;
}

inline bool IsConditionalBranch(Opcode op) {
  return op == Opcode::kJmpIfTrue || op == Opcode::kJmpIfFalse;
}

inline bool IsTerminator(Opcode op) {
  return op == Opcode::kJmp || op == Opcode::kReturn;
}

inline bool IsComparison(Opcode op) {
  switch (op) {
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
      return true;
    default:
      return false;
  }
}

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_OPCODE_H_
