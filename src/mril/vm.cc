#include "mril/vm.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "mril/builtins.h"
#include "obs/metrics.h"

namespace manimal::mril {

namespace {

Status TypeError(const char* op, const Value& a) {
  return Status::InvalidArgument(StrPrintf("%s: bad operand kind %s", op,
                                           ValueKindName(a.kind())));
}

Status TypeError2(std::string_view op, const Value& a, const Value& b) {
  return Status::InvalidArgument(
      StrPrintf("%.*s: bad operand kinds %s, %s",
                static_cast<int>(op.size()), op.data(),
                ValueKindName(a.kind()), ValueKindName(b.kind())));
}

// Arithmetic off the all-i64 fast path: doubles, mixed numerics,
// string concatenation (kAdd), and the div/mod zero checks. Concat
// results are arena-backed views (inline when short) — the per-record
// reset reclaims them without freeing.
Status ArithSlow(Opcode op, const Value& a, const Value& b, Value* out,
                 ValueArena* arena) {
  if (op == Opcode::kAdd && a.is_str() && b.is_str()) {
    *out = Value::Borrowed(arena->Concat(a.str(), b.str()));
    return Status::OK();
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return TypeError2(GetOpcodeInfo(op).mnemonic, a, b);
  }
  if (a.is_i64() && b.is_i64()) {
    int64_t x = a.i64(), y = b.i64();
    // Arithmetic is defined two's-complement wrapping (via unsigned),
    // like the JVM's — never C++ signed-overflow UB.
    auto wrap = [](uint64_t v) { return static_cast<int64_t>(v); };
    switch (op) {
      case Opcode::kAdd:
        *out = Value::I64(wrap(static_cast<uint64_t>(x) +
                               static_cast<uint64_t>(y)));
        return Status::OK();
      case Opcode::kSub:
        *out = Value::I64(wrap(static_cast<uint64_t>(x) -
                               static_cast<uint64_t>(y)));
        return Status::OK();
      case Opcode::kMul:
        *out = Value::I64(wrap(static_cast<uint64_t>(x) *
                               static_cast<uint64_t>(y)));
        return Status::OK();
      case Opcode::kDiv:
        if (y == 0) return Status::InvalidArgument("integer division by 0");
        *out = Value::I64(x / y);
        return Status::OK();
      case Opcode::kMod:
        if (y == 0) return Status::InvalidArgument("integer modulo by 0");
        *out = Value::I64(x % y);
        return Status::OK();
      default:
        MANIMAL_UNREACHABLE();
    }
  }
  double x = a.AsF64(), y = b.AsF64();
  switch (op) {
    case Opcode::kAdd:
      *out = Value::F64(x + y);
      return Status::OK();
    case Opcode::kSub:
      *out = Value::F64(x - y);
      return Status::OK();
    case Opcode::kMul:
      *out = Value::F64(x * y);
      return Status::OK();
    case Opcode::kDiv:
      *out = Value::F64(x / y);
      return Status::OK();
    case Opcode::kMod:
      return Status::InvalidArgument("mod requires integer operands");
    default:
      MANIMAL_UNREACHABLE();
  }
}

// Comparison off the all-i64 fast path.
Status CompareSlow(Opcode op, const Value& a, const Value& b, bool* out) {
  // Equality works across kinds; ordering needs comparable kinds.
  if (op == Opcode::kCmpEq) {
    *out = (a == b);
    return Status::OK();
  }
  if (op == Opcode::kCmpNe) {
    *out = !(a == b);
    return Status::OK();
  }
  bool comparable = (a.is_numeric() && b.is_numeric()) ||
                    (a.is_str() && b.is_str()) ||
                    (a.is_bool() && b.is_bool());
  if (!comparable) return TypeError2("compare", a, b);
  int c = a.Compare(b);
  switch (op) {
    case Opcode::kCmpLt:
      *out = c < 0;
      return Status::OK();
    case Opcode::kCmpLe:
      *out = c <= 0;
      return Status::OK();
    case Opcode::kCmpGt:
      *out = c > 0;
      return Status::OK();
    case Opcode::kCmpGe:
      *out = c >= 0;
      return Status::OK();
    default:
      MANIMAL_UNREACHABLE();
  }
}

// Registry counter pointers, resolved once per process so VmInstance
// teardown is plain pointer arithmetic — no name concat, no registry
// lock — on the per-task flush.
struct VmCounters {
  obs::Counter* instructions;
  obs::Counter* invocations;
  std::vector<obs::Counter*> builtin;  // indexed by builtin id
};

const VmCounters& GetVmCounters() {
  static const VmCounters* counters = [] {
    auto* c = new VmCounters();
    auto& metrics = obs::MetricsRegistry::Get();
    c->instructions = metrics.GetCounter("mril.instructions");
    c->invocations = metrics.GetCounter("mril.invocations");
    const BuiltinRegistry& registry = BuiltinRegistry::Get();
    c->builtin.reserve(registry.size());
    for (const Builtin& b : registry.all()) {
      c->builtin.push_back(metrics.GetCounter("mril.builtin." + b.name));
    }
    return c;
  }();
  return *counters;
}

VmDispatch ResolveDispatch(VmDispatch requested) {
  if (requested == VmDispatch::kAuto) {
    if (const char* env = std::getenv("MANIMAL_VM_DISPATCH")) {
      std::string_view v(env);
      if (v == "switch") {
        requested = VmDispatch::kSwitch;
      } else if (v == "threaded") {
        requested = VmDispatch::kThreaded;
      }
    }
  }
  if (!ThreadedDispatchAvailable()) return VmDispatch::kSwitch;
  return requested == VmDispatch::kSwitch ? VmDispatch::kSwitch
                                          : VmDispatch::kThreaded;
}

}  // namespace

VmInstance::VmInstance(const Program* program, VmOptions options)
    : program_(program),
      options_(std::move(options)),
      dispatch_(ResolveDispatch(options_.dispatch)),
      builtin_calls_(BuiltinRegistry::Get().size(), 0) {
  LinkOptions link_options;
  link_options.field_remap = options_.field_remap;
  Result<LinkedProgram> linked = Link(*program, link_options);
  if (linked.ok()) {
    linked_ = std::move(*linked);
    int max_stack = linked_.map_fn.max_stack;
    int num_locals = linked_.map_fn.num_locals;
    if (linked_.has_reduce) {
      max_stack = std::max(max_stack, linked_.reduce_fn.max_stack);
      num_locals = std::max(num_locals, linked_.reduce_fn.num_locals);
    }
    stack_.resize(max_stack);
    locals_.resize(num_locals);
  } else {
    link_status_ = linked.status();
  }
  ResetMembers();
}

VmInstance::~VmInstance() {
  if (total_steps_ == 0 && map_invocations_ == 0 &&
      reduce_invocations_ == 0) {
    return;
  }
  const VmCounters& counters = GetVmCounters();
  counters.instructions->Add(total_steps_);
  counters.invocations->Add(map_invocations_ + reduce_invocations_);
  for (size_t id = 0; id < builtin_calls_.size(); ++id) {
    if (builtin_calls_[id] == 0) continue;
    counters.builtin[id]->Add(builtin_calls_[id]);
  }
}

void VmInstance::ResetMembers() {
  members_.clear();
  members_.reserve(program_->members.size());
  for (const MemberVar& m : program_->members) {
    members_.push_back(m.initial_value);
  }
}

Status VmInstance::InvokeMap(const Value& key, const Value& value) {
  ++map_invocations_;
  return Invoke(linked_.map_fn, key, value);
}

Status VmInstance::InvokeReduce(const Value& key, const Value& values) {
  if (!program_->reduce_fn.has_value()) {
    return Status::InvalidArgument("program has no reduce()");
  }
  ++reduce_invocations_;
  return Invoke(linked_.reduce_fn, key, values);
}

Status VmInstance::Invoke(const LinkedFunction& fn, const Value& p0,
                          const Value& p1) {
  MANIMAL_RETURN_IF_ERROR(link_status_);
  // Reclaim the previous invocation's string temporaries. Safe because
  // the loop clears its stack and locals on exit: nothing that could
  // point into the arena survives between invocations except members
  // and emitted/logged values, which are promoted to owned storage.
  arena_.Reset();
  // Borrowed-string buffers (the arena just reset, the caller's record
  // buffer) may be recycled across invocations; kill any builtin memo
  // keyed on their addresses.
  InvalidateBorrowedStringMemos();
  const Value* params[2] = {&p0, &p1};
#if MANIMAL_VM_THREADED_DISPATCH
  if (dispatch_ == VmDispatch::kThreaded) return RunThreaded(fn, params);
#endif
  return RunSwitch(fn, params);
}

// The interpreter loop bodies. vm_loop.inc defines one member function
// per inclusion; both backends share the handler source text, so they
// cannot drift apart semantically.
#if MANIMAL_VM_THREADED_DISPATCH
#define VM_LOOP_NAME RunThreaded
#define VM_LOOP_THREADED 1
#include "mril/vm_loop.inc"
#endif

#define VM_LOOP_NAME RunSwitch
#define VM_LOOP_THREADED 0
#include "mril/vm_loop.inc"

}  // namespace manimal::mril
