#include "mril/vm.h"

#include "common/check.h"
#include "common/strings.h"
#include "mril/builtins.h"
#include "obs/metrics.h"

namespace manimal::mril {

namespace {

Status TypeError(const char* op, const Value& a) {
  return Status::InvalidArgument(StrPrintf("%s: bad operand kind %s", op,
                                           ValueKindName(a.kind())));
}

Status TypeError2(const char* op, const Value& a, const Value& b) {
  return Status::InvalidArgument(
      StrPrintf("%s: bad operand kinds %s, %s", op,
                ValueKindName(a.kind()), ValueKindName(b.kind())));
}

Status Arith(Opcode op, const Value& a, const Value& b, Value* out) {
  if (op == Opcode::kAdd && a.is_str() && b.is_str()) {
    *out = Value::Str(a.str() + b.str());
    return Status::OK();
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    std::string name(GetOpcodeInfo(op).mnemonic);
    return TypeError2(name.c_str(), a, b);
  }
  if (a.is_i64() && b.is_i64()) {
    int64_t x = a.i64(), y = b.i64();
    // Arithmetic is defined two's-complement wrapping (via unsigned),
    // like the JVM's — never C++ signed-overflow UB.
    auto wrap = [](uint64_t v) { return static_cast<int64_t>(v); };
    switch (op) {
      case Opcode::kAdd:
        *out = Value::I64(wrap(static_cast<uint64_t>(x) +
                               static_cast<uint64_t>(y)));
        return Status::OK();
      case Opcode::kSub:
        *out = Value::I64(wrap(static_cast<uint64_t>(x) -
                               static_cast<uint64_t>(y)));
        return Status::OK();
      case Opcode::kMul:
        *out = Value::I64(wrap(static_cast<uint64_t>(x) *
                               static_cast<uint64_t>(y)));
        return Status::OK();
      case Opcode::kDiv:
        if (y == 0) return Status::InvalidArgument("integer division by 0");
        *out = Value::I64(x / y);
        return Status::OK();
      case Opcode::kMod:
        if (y == 0) return Status::InvalidArgument("integer modulo by 0");
        *out = Value::I64(x % y);
        return Status::OK();
      default:
        MANIMAL_UNREACHABLE();
    }
  }
  double x = a.AsF64(), y = b.AsF64();
  switch (op) {
    case Opcode::kAdd:
      *out = Value::F64(x + y);
      return Status::OK();
    case Opcode::kSub:
      *out = Value::F64(x - y);
      return Status::OK();
    case Opcode::kMul:
      *out = Value::F64(x * y);
      return Status::OK();
    case Opcode::kDiv:
      *out = Value::F64(x / y);
      return Status::OK();
    case Opcode::kMod:
      return Status::InvalidArgument("mod requires integer operands");
    default:
      MANIMAL_UNREACHABLE();
  }
}

Status Compare(Opcode op, const Value& a, const Value& b, Value* out) {
  // Equality works across kinds; ordering needs comparable kinds.
  if (op == Opcode::kCmpEq) {
    *out = Value::Bool(a == b);
    return Status::OK();
  }
  if (op == Opcode::kCmpNe) {
    *out = Value::Bool(!(a == b));
    return Status::OK();
  }
  bool comparable = (a.is_numeric() && b.is_numeric()) ||
                    (a.is_str() && b.is_str()) ||
                    (a.is_bool() && b.is_bool());
  if (!comparable) return TypeError2("compare", a, b);
  int c = a.Compare(b);
  switch (op) {
    case Opcode::kCmpLt:
      *out = Value::Bool(c < 0);
      return Status::OK();
    case Opcode::kCmpLe:
      *out = Value::Bool(c <= 0);
      return Status::OK();
    case Opcode::kCmpGt:
      *out = Value::Bool(c > 0);
      return Status::OK();
    case Opcode::kCmpGe:
      *out = Value::Bool(c >= 0);
      return Status::OK();
    default:
      MANIMAL_UNREACHABLE();
  }
}

}  // namespace

VmInstance::VmInstance(const Program* program, VmOptions options)
    : program_(program),
      options_(std::move(options)),
      builtin_calls_(BuiltinRegistry::Get().size(), 0) {
  ResetMembers();
}

VmInstance::~VmInstance() {
  if (total_steps_ == 0 && map_invocations_ == 0 &&
      reduce_invocations_ == 0) {
    return;
  }
  auto& metrics = obs::MetricsRegistry::Get();
  metrics.GetCounter("mril.instructions")->Add(total_steps_);
  metrics.GetCounter("mril.invocations")
      ->Add(map_invocations_ + reduce_invocations_);
  const BuiltinRegistry& registry = BuiltinRegistry::Get();
  for (size_t id = 0; id < builtin_calls_.size(); ++id) {
    if (builtin_calls_[id] == 0) continue;
    const Builtin* b = registry.FindById(static_cast<int>(id));
    if (b == nullptr) continue;
    metrics.GetCounter("mril.builtin." + b->name)
        ->Add(builtin_calls_[id]);
  }
}

void VmInstance::ResetMembers() {
  members_.clear();
  members_.reserve(program_->members.size());
  for (const MemberVar& m : program_->members) {
    members_.push_back(m.initial_value);
  }
}

Status VmInstance::InvokeMap(const Value& key, const Value& value) {
  ++map_invocations_;
  return Invoke(program_->map_fn, key, value);
}

Status VmInstance::InvokeReduce(const Value& key, const Value& values) {
  if (!program_->reduce_fn.has_value()) {
    return Status::InvalidArgument("program has no reduce()");
  }
  ++reduce_invocations_;
  return Invoke(*program_->reduce_fn, key, values);
}

Status VmInstance::Invoke(const Function& fn, const Value& p0,
                          const Value& p1) {
  const Value params[2] = {p0, p1};
  std::vector<Value> locals(fn.num_locals);
  std::vector<Value> stack;
  stack.reserve(16);
  const BuiltinRegistry& registry = BuiltinRegistry::Get();
  const bool is_map = (&fn == &program_->map_fn);

  int64_t steps = 0;
  int pc = 0;
  const int n = static_cast<int>(fn.code.size());

  auto pop = [&stack]() {
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  while (pc < n) {
    if (++steps > options_.max_steps_per_invocation) {
      return Status::Internal(
          StrPrintf("%s: exceeded %lld steps (infinite loop?)",
                    fn.name.c_str(),
                    static_cast<long long>(options_.max_steps_per_invocation)));
    }
    const Instruction& inst = fn.code[pc];
    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kLoadConst:
        stack.push_back(program_->constants[inst.operand]);
        break;
      case Opcode::kLoadParam:
        stack.push_back(params[inst.operand]);
        break;
      case Opcode::kLoadLocal:
        stack.push_back(locals[inst.operand]);
        break;
      case Opcode::kStoreLocal:
        locals[inst.operand] = pop();
        break;
      case Opcode::kLoadMember:
        stack.push_back(members_[inst.operand]);
        break;
      case Opcode::kStoreMember:
        members_[inst.operand] = pop();
        break;
      case Opcode::kGetField: {
        Value rec = pop();
        if (!rec.is_list()) return TypeError("get_field", rec);
        int idx = inst.operand;
        if (is_map && !options_.field_remap.empty()) {
          if (idx < 0 ||
              idx >= static_cast<int>(options_.field_remap.size())) {
            return Status::Internal(StrPrintf(
                "get_field %d outside the field remap", idx));
          }
          if (options_.field_remap[idx] < 0) {
            // The field was projected away. The analyzer only removes
            // fields whose every output-relevant use is absent, so
            // this read can feed nothing but debug logging — which the
            // paper explicitly allows optimization to perturb
            // (§2.2/Appendix C). Observe null.
            stack.push_back(Value::Null());
            break;
          }
          idx = options_.field_remap[idx];
        }
        if (idx < 0 || static_cast<size_t>(idx) >= rec.list().size()) {
          return Status::InvalidArgument(
              StrPrintf("get_field %d out of range (%zu fields)", idx,
                        rec.list().size()));
        }
        stack.push_back(rec.list()[idx]);
        break;
      }
      case Opcode::kDup:
        stack.push_back(stack.back());
        break;
      case Opcode::kPop:
        stack.pop_back();
        break;
      case Opcode::kSwap:
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod: {
        Value b = pop();
        Value a = pop();
        Value out;
        MANIMAL_RETURN_IF_ERROR(Arith(inst.op, a, b, &out));
        stack.push_back(std::move(out));
        break;
      }
      case Opcode::kNeg: {
        Value a = pop();
        if (a.is_i64()) {
          stack.push_back(Value::I64(-a.i64()));
        } else if (a.is_f64()) {
          stack.push_back(Value::F64(-a.f64()));
        } else {
          return TypeError("neg", a);
        }
        break;
      }
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpGt:
      case Opcode::kCmpGe:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe: {
        Value b = pop();
        Value a = pop();
        Value out;
        MANIMAL_RETURN_IF_ERROR(Compare(inst.op, a, b, &out));
        stack.push_back(std::move(out));
        break;
      }
      case Opcode::kAnd:
      case Opcode::kOr: {
        Value b = pop();
        Value a = pop();
        if (!a.is_bool() || !b.is_bool()) {
          return TypeError2("and/or", a, b);
        }
        bool r = inst.op == Opcode::kAnd
                     ? (a.bool_value() && b.bool_value())
                     : (a.bool_value() || b.bool_value());
        stack.push_back(Value::Bool(r));
        break;
      }
      case Opcode::kNot: {
        Value a = pop();
        if (!a.is_bool()) return TypeError("not", a);
        stack.push_back(Value::Bool(!a.bool_value()));
        break;
      }
      case Opcode::kJmp:
        pc = inst.operand;
        continue;
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse: {
        Value c = pop();
        if (!c.is_bool()) return TypeError("branch condition", c);
        bool taken = (inst.op == Opcode::kJmpIfTrue) == c.bool_value();
        if (taken) {
          pc = inst.operand;
          continue;
        }
        break;
      }
      case Opcode::kCall: {
        const Builtin* b = registry.FindById(inst.operand);
        MANIMAL_CHECK(b != nullptr);  // verifier guarantees
        ++builtin_calls_[inst.operand];
        std::vector<Value> args(b->arity);
        for (int i = b->arity - 1; i >= 0; --i) args[i] = pop();
        Value result;
        MANIMAL_RETURN_IF_ERROR(b->fn(args, &result));
        stack.push_back(std::move(result));
        break;
      }
      case Opcode::kEmit: {
        Value value = pop();
        Value key = pop();
        if (emit_) MANIMAL_RETURN_IF_ERROR(emit_(key, value));
        break;
      }
      case Opcode::kLog: {
        Value v = pop();
        if (log_) log_(v);
        break;
      }
      case Opcode::kReturn:
        total_steps_ += steps;
        return Status::OK();
    }
    ++pc;
  }
  total_steps_ += steps;
  return Status::Internal(fn.name + ": fell off end of bytecode");
}

}  // namespace manimal::mril
