// The MRIL builtin method library — the analogue of the Java class
// library calls (String, Pattern, Hashtable, ...) that appear inside
// users' map() functions.
//
// Each builtin carries a `functional` bit: whether the analyzer has
// built-in knowledge that the method's result depends only on its
// arguments (paper §3.2, the isFunc test: "The analyzer has built-in
// knowledge of standard language operations and some common class
// library methods, such as those associated with String, Pattern,
// etc."). Hashtable methods are deliberately registered as
// NON-functional: the paper's analyzer "does not have builtin
// knowledge of how Hashtable works", which is exactly why Benchmark 4's
// selection goes Undetected in Table 1.

#ifndef MANIMAL_MRIL_BUILTINS_H_
#define MANIMAL_MRIL_BUILTINS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "serde/value.h"

namespace manimal::mril {

// Builtins receive their arguments as a raw span (`args[0..arity)`)
// so the VM can pass a slice of its operand stack directly — no
// per-call vector. A plain function pointer (every builtin is a
// captureless lambda) keeps the call a single indirect jump.
// `result` never aliases `args`.
using BuiltinFn = Status (*)(const Value* args, Value* result);

struct Builtin {
  int id;
  std::string name;
  int arity;
  // True iff the result is a pure function of the arguments AND the
  // call has no side effects — the analyzer's purity knowledge.
  bool functional;
  // The result's value kind when it is fixed regardless of arguments
  // (static-typing knowledge used by the optimizer's arithmetic
  // normalizations); nullopt when argument-dependent.
  std::optional<ValueKind> result_kind;
  BuiltinFn fn;
};

// Global immutable registry, populated at first use.
class BuiltinRegistry {
 public:
  static const BuiltinRegistry& Get();

  const Builtin* FindByName(std::string_view name) const;
  const Builtin* FindById(int id) const;
  int size() const { return static_cast<int>(builtins_.size()); }
  const std::vector<Builtin>& all() const { return builtins_; }

 private:
  BuiltinRegistry();
  std::vector<Builtin> builtins_;
};

// Invalidates the thread's memoized-scan state for *borrowed* string
// arguments (currently the str.word_at sequential-tokenization memo).
// Borrowed strings are identified only by (pointer, length), which is
// unambiguous while their backing buffers are live but can collide
// once a buffer is reclaimed and reused. The VM calls this at every
// invocation entry — the same boundary at which it resets the arena
// and record buffers may be recycled — so a memo never outlives the
// buffers that vouch for its key. Owned strings are keyed by
// shared_ptr identity (with a keepalive reference) and need no
// invalidation.
void InvalidateBorrowedStringMemos();

// A mutable string->Value map object, reachable from MRIL code through
// kHandle values (the Java Hashtable stand-in).
class HashtableObject : public ObjectHandle {
 public:
  std::string TypeName() const override { return "hashtable"; }

  // Stored key/value are promoted with ToOwned(): the table outlives
  // the record whose buffer a borrowed argument may point into.
  void Put(const Value& key, const Value& value);
  bool Contains(const Value& key) const;
  Value Get(const Value& key) const;  // Null if absent
  int64_t Size() const { return static_cast<int64_t>(entries_.size()); }

 private:
  // Keyed by Value::ToString() of the key (scalar keys only in
  // practice).
  std::vector<std::pair<Value, Value>> entries_;
};

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_BUILTINS_H_
