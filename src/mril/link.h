// The MRIL link step: decodes a verified `Program` into a directly
// executable instruction stream so the interpreter's per-instruction
// work is a load, a dispatch, and the operation itself.
//
// Linking resolves, once per task instead of once per executed
// instruction:
//   - constant-pool indexes      -> `const Value*` into the program
//   - builtin ids                -> `const Builtin*` (+ arity immediate)
//   - jump targets               -> indexes into the linked stream
//   - the optimizer field remap  -> folded into get_field operands
//     (projected-away reads become kGetFieldNull; out-of-remap reads
//     become kGetFieldBadRemap, erroring only if actually executed)
// and fuses the two dominant instruction pairs into superinstructions:
//   - LoadParam p; GetField f    -> kLoadParamField   (p, f)
//   - Cmp??; JmpIfTrue/False t   -> kCmp??Br          (t, sense)
// Fusion is legal because the verifier rejects jumps into the middle
// of a pair (a fused second half is never itself a jump target — we
// check), and kNop is dropped entirely. One linked instruction counts
// as one VM step, so a fused pair costs one step on both dispatch
// backends.
//
// Each linked function ends with a kFellOffEnd sentinel, which lets
// the interpreter drop its `pc < n` bounds check: falling off the end
// executes the sentinel and reports the same Internal error the
// unlinked interpreter produced.

#ifndef MANIMAL_MRIL_LINK_H_
#define MANIMAL_MRIL_LINK_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "mril/builtins.h"
#include "mril/program.h"

namespace manimal::mril {

// Linked opcodes: the Opcode set minus kNop, plus resolved get_field
// variants, superinstructions, and the end sentinel.
#define MANIMAL_LOP_LIST(X)                                          \
  X(kLoadConst)                                                      \
  X(kLoadParam)                                                      \
  X(kLoadLocal)                                                      \
  X(kStoreLocal)                                                     \
  X(kLoadMember)                                                     \
  X(kStoreMember)                                                    \
  X(kGetField)                                                       \
  X(kGetFieldNull)     /* projected-away field: observe null */      \
  X(kGetFieldBadRemap) /* outside the remap: Internal if run */      \
  X(kDup)                                                            \
  X(kPop)                                                            \
  X(kSwap)                                                           \
  X(kAdd)                                                            \
  X(kSub)                                                            \
  X(kMul)                                                            \
  X(kDiv)                                                            \
  X(kMod)                                                            \
  X(kNeg)                                                            \
  X(kCmpLt)                                                          \
  X(kCmpLe)                                                          \
  X(kCmpGt)                                                          \
  X(kCmpGe)                                                          \
  X(kCmpEq)                                                          \
  X(kCmpNe)                                                          \
  X(kAnd)                                                            \
  X(kOr)                                                             \
  X(kNot)                                                            \
  X(kJmp)                                                            \
  X(kJmpIfTrue)                                                      \
  X(kJmpIfFalse)                                                     \
  X(kCall)                                                           \
  X(kEmit)                                                           \
  X(kLog)                                                            \
  X(kReturn)                                                         \
  X(kLoadParamField) /* LoadParam a; GetField b */                   \
  X(kCmpLtBr)        /* CmpLt; JmpIf(b) a */                         \
  X(kCmpLeBr)                                                        \
  X(kCmpGtBr)                                                        \
  X(kCmpGeBr)                                                        \
  X(kCmpEqBr)                                                        \
  X(kCmpNeBr)                                                        \
  X(kFellOffEnd)

enum class LOp : uint8_t {
#define MANIMAL_LOP_ENUM(name) name,
  MANIMAL_LOP_LIST(MANIMAL_LOP_ENUM)
#undef MANIMAL_LOP_ENUM
};

constexpr int kNumLOps = 0
#define MANIMAL_LOP_COUNT(name) +1
    MANIMAL_LOP_LIST(MANIMAL_LOP_COUNT)
#undef MANIMAL_LOP_COUNT
    ;

std::string_view LOpName(LOp op);

// One linked instruction. Operand meaning by op:
//   kLoadConst                 constant -> pool entry
//   kCall                      builtin; a = arity, b = builtin id
//   kLoadParamField            a = param slot, b = field index
//   kCmp??Br                   a = target, b = branch sense (1 = taken
//                              when the comparison is true)
//   kJmp/kJmpIfTrue/kJmpIfFalse  a = target
//   everything else            a = slot / field index
struct LInsn {
  LOp op;
  int32_t a = 0;
  int32_t b = 0;
  union {
    const Builtin* builtin;  // kCall
    const Value* constant;   // kLoadConst
    const void* raw = nullptr;
  };
};

struct LinkedFunction {
  const Function* source = nullptr;
  std::vector<LInsn> code;  // always ends with kFellOffEnd
  int num_locals = 0;
  // Exact operand-stack high-water mark (from the verifier's stack
  // discipline: depth is consistent per pc and zero at every branch
  // and return, so a single linear pass computes it).
  int max_stack = 0;
  int num_fused = 0;  // superinstructions emitted (tests/telemetry)
};

struct LinkedProgram {
  const Program* program = nullptr;
  LinkedFunction map_fn;
  bool has_reduce = false;
  LinkedFunction reduce_fn;
};

struct LinkOptions {
  // Map-side get_field remap; same semantics as VmOptions::field_remap.
  std::vector<int> field_remap;
  // Tests can disable fusion to compare fused vs. unfused streams.
  bool enable_superinstructions = true;
};

// Links `program`, which must reference live storage for the lifetime
// of the result (linked instructions point into its constant pool).
// Programs that violate verifier invariants (bad slot indexes,
// unknown builtins, inconsistent stack depths) are rejected with
// InvalidArgument rather than UB — VmInstance surfaces that Status
// from Invoke, so unverified garbage stays memory-safe.
Result<LinkedProgram> Link(const Program& program,
                           const LinkOptions& options);

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_LINK_H_
