// Textual assembler for MRIL. Used by tests, documentation, and anyone
// who wants to write a UDF without linking C++ (the builder API is the
// other frontend).
//
// Grammar (line oriented; '#' starts a comment):
//
//   .program <name>
//   .key_type i64|f64|str|bool
//   .value_schema <name>:<type>,... | <opaque>
//   .requires_sorted_output            (optional)
//   .member <name> <literal>           (zero or more)
//   .func map|reduce locals=<n>
//     <label>:                         (jump target)
//     <mnemonic> [operand]
//   .endfunc
//
// Operands:
//   load_const   a literal: i64:<n>, f64:<x>, str:"...", bool:true/false
//   get_field    a field name from the value schema, or an index
//   call         a builtin name, e.g. str.contains
//   jmp*         a label
//   others       a decimal integer

#ifndef MANIMAL_MRIL_ASSEMBLER_H_
#define MANIMAL_MRIL_ASSEMBLER_H_

#include <string_view>

#include "common/status.h"
#include "mril/program.h"

namespace manimal::mril {

// Parses and verifies a program from assembler text.
Result<Program> AssembleProgram(std::string_view text);

// Parses a single literal token (i64:5, f64:1.5, str:"x", bool:true,
// null).
Result<Value> ParseValueLiteral(std::string_view token);

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_ASSEMBLER_H_
