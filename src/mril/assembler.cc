#include "mril/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/strings.h"
#include "mril/builtins.h"
#include "mril/verifier.h"

namespace manimal::mril {

namespace {

// Strips comments and surrounding whitespace; returns empty for blank
// lines.
std::string CleanLine(std::string_view line) {
  size_t hash = std::string_view::npos;
  bool in_str = false;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_str = !in_str;
    if (line[i] == '#' && !in_str) {
      hash = i;
      break;
    }
  }
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  size_t b = line.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return "";
  size_t e = line.find_last_not_of(" \t\r");
  return std::string(line.substr(b, e - b + 1));
}

// Splits "mnemonic rest-of-line" at the first space run.
std::pair<std::string, std::string> SplitFirstToken(const std::string& s) {
  size_t sp = s.find_first_of(" \t");
  if (sp == std::string::npos) return {s, ""};
  size_t rest = s.find_first_not_of(" \t", sp);
  return {s.substr(0, sp),
          rest == std::string::npos ? "" : s.substr(rest)};
}

Result<FieldType> ParseFieldType(std::string_view s) {
  if (s == "i64") return FieldType::kI64;
  if (s == "f64") return FieldType::kF64;
  if (s == "str") return FieldType::kStr;
  if (s == "bool") return FieldType::kBool;
  return Status::InvalidArgument("bad field type: " + std::string(s));
}

struct PendingJump {
  int pc;
  std::string label;
  int line_no;
};

}  // namespace

Result<Value> ParseValueLiteral(std::string_view token) {
  if (token == "null") return Value::Null();
  if (token == "bool:true" || token == "true") return Value::Bool(true);
  if (token == "bool:false" || token == "false") return Value::Bool(false);
  if (StartsWith(token, "i64:")) {
    return Value::I64(std::strtoll(std::string(token.substr(4)).c_str(),
                                   nullptr, 10));
  }
  if (StartsWith(token, "f64:")) {
    return Value::F64(
        std::strtod(std::string(token.substr(4)).c_str(), nullptr));
  }
  if (StartsWith(token, "str:\"") && EndsWith(token, "\"") &&
      token.size() >= 6) {
    return Value::Str(UnescapeField(token.substr(5, token.size() - 6)));
  }
  return Status::InvalidArgument("bad value literal: " + std::string(token));
}

Result<Program> AssembleProgram(std::string_view text) {
  Program program;
  bool saw_program_directive = false;

  Function* current_fn = nullptr;
  Function map_fn, reduce_fn;
  bool have_map = false, have_reduce = false;
  std::map<std::string, int> labels;
  std::vector<PendingJump> pending;

  auto finish_function = [&](int line_no) -> Status {
    for (const PendingJump& j : pending) {
      auto it = labels.find(j.label);
      if (it == labels.end()) {
        return Status::InvalidArgument(StrPrintf(
            "line %d: unresolved label '%s'", j.line_no, j.label.c_str()));
      }
      current_fn->code[j.pc].operand = it->second;
    }
    // Allow labels pointing one past the end.
    bool needs_pad = false;
    for (const auto& [name, target] : labels) {
      (void)name;
      if (target == static_cast<int>(current_fn->code.size())) {
        needs_pad = true;
      }
    }
    if (needs_pad || current_fn->code.empty() ||
        (current_fn->code.back().op != Opcode::kReturn &&
         current_fn->code.back().op != Opcode::kJmp)) {
      current_fn->code.push_back(Instruction{Opcode::kReturn, 0});
    }
    (void)line_no;
    labels.clear();
    pending.clear();
    current_fn = nullptr;
    return Status::OK();
  };

  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;

    std::string line = CleanLine(raw);
    if (line.empty()) continue;

    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(
          StrPrintf("line %d: %s", line_no, why.c_str()));
    };

    // ---- directives ----
    if (line[0] == '.') {
      auto [directive, rest] = SplitFirstToken(line);
      if (directive == ".program") {
        if (rest.empty()) return bad("missing program name");
        program.name = rest;
        saw_program_directive = true;
      } else if (directive == ".key_type") {
        MANIMAL_ASSIGN_OR_RETURN(program.key_type, ParseFieldType(rest));
      } else if (directive == ".value_schema") {
        if (rest == "<opaque>") {
          program.value_param_kind = ValueParamKind::kOpaque;
          program.value_schema = Schema::Opaque();
        } else {
          MANIMAL_ASSIGN_OR_RETURN(program.value_schema,
                                   Schema::Parse(rest));
          program.value_param_kind = ValueParamKind::kRecord;
        }
      } else if (directive == ".requires_sorted_output") {
        program.requires_sorted_output = true;
      } else if (directive == ".member") {
        auto [name, literal] = SplitFirstToken(rest);
        if (name.empty() || literal.empty()) {
          return bad(".member needs <name> <literal>");
        }
        MANIMAL_ASSIGN_OR_RETURN(Value init, ParseValueLiteral(literal));
        program.members.push_back(MemberVar{name, std::move(init)});
      } else if (directive == ".func") {
        if (current_fn != nullptr) return bad("nested .func");
        auto [fname, opts] = SplitFirstToken(rest);
        Function* target = nullptr;
        if (fname == "map") {
          if (have_map) return bad("duplicate map function");
          target = &map_fn;
          have_map = true;
        } else if (fname == "reduce") {
          if (have_reduce) return bad("duplicate reduce function");
          target = &reduce_fn;
          have_reduce = true;
        } else {
          return bad("function must be 'map' or 'reduce'");
        }
        target->name = fname;
        target->num_params = 2;
        target->num_locals = 0;
        if (!opts.empty()) {
          if (!StartsWith(opts, "locals=")) {
            return bad("expected locals=<n>");
          }
          target->num_locals =
              static_cast<int>(std::strtol(opts.c_str() + 7, nullptr, 10));
        }
        current_fn = target;
      } else if (directive == ".endfunc") {
        if (current_fn == nullptr) return bad(".endfunc outside .func");
        MANIMAL_RETURN_IF_ERROR(finish_function(line_no));
      } else {
        return bad("unknown directive: " + directive);
      }
      continue;
    }

    // ---- labels ----
    if (line.back() == ':') {
      if (current_fn == nullptr) return bad("label outside .func");
      std::string name = line.substr(0, line.size() - 1);
      if (!labels.emplace(name, static_cast<int>(current_fn->code.size()))
               .second) {
        return bad("duplicate label: " + name);
      }
      continue;
    }

    // ---- instructions ----
    if (current_fn == nullptr) return bad("instruction outside .func");
    auto [mnemonic, operand_text] = SplitFirstToken(line);
    auto op = OpcodeFromMnemonic(mnemonic);
    if (!op.has_value()) return bad("unknown mnemonic: " + mnemonic);
    const OpcodeInfo& info = GetOpcodeInfo(*op);

    Instruction inst;
    inst.op = *op;
    if (!info.has_operand) {
      if (!operand_text.empty()) return bad("unexpected operand");
      current_fn->code.push_back(inst);
      continue;
    }
    if (operand_text.empty()) return bad("missing operand");

    switch (*op) {
      case Opcode::kLoadConst: {
        MANIMAL_ASSIGN_OR_RETURN(Value v, ParseValueLiteral(operand_text));
        inst.operand = program.AddConstant(v);
        break;
      }
      case Opcode::kGetField: {
        if (std::isdigit(static_cast<unsigned char>(operand_text[0]))) {
          inst.operand = static_cast<int>(
              std::strtol(operand_text.c_str(), nullptr, 10));
        } else {
          auto idx = program.value_schema.FieldIndex(operand_text);
          if (!idx.has_value()) {
            return bad("unknown field: " + operand_text);
          }
          inst.operand = *idx;
        }
        break;
      }
      case Opcode::kCall: {
        const Builtin* b =
            BuiltinRegistry::Get().FindByName(operand_text);
        if (b == nullptr) return bad("unknown builtin: " + operand_text);
        inst.operand = b->id;
        break;
      }
      case Opcode::kJmp:
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse: {
        pending.push_back(PendingJump{
            static_cast<int>(current_fn->code.size()), operand_text,
            line_no});
        inst.operand = -1;
        break;
      }
      case Opcode::kLoadMember:
      case Opcode::kStoreMember: {
        if (std::isdigit(static_cast<unsigned char>(operand_text[0]))) {
          inst.operand = static_cast<int>(
              std::strtol(operand_text.c_str(), nullptr, 10));
        } else {
          auto idx = program.MemberIndex(operand_text);
          if (!idx.has_value()) {
            return bad("unknown member: " + operand_text);
          }
          inst.operand = *idx;
        }
        break;
      }
      default:
        inst.operand = static_cast<int>(
            std::strtol(operand_text.c_str(), nullptr, 10));
        break;
    }
    current_fn->code.push_back(inst);
  }

  if (current_fn != nullptr) {
    return Status::InvalidArgument("missing .endfunc at end of input");
  }
  if (!saw_program_directive) {
    return Status::InvalidArgument("missing .program directive");
  }
  if (!have_map) {
    return Status::InvalidArgument("program has no map function");
  }
  program.map_fn = std::move(map_fn);
  if (have_reduce) program.reduce_fn = std::move(reduce_fn);

  MANIMAL_RETURN_IF_ERROR(VerifyProgram(program));
  return program;
}

}  // namespace manimal::mril
