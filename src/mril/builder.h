// Fluent construction API for MRIL programs — the "compiler frontend"
// used by the workload definitions, tests, and examples. Label-based
// jumps are resolved at Build() time.

#ifndef MANIMAL_MRIL_BUILDER_H_
#define MANIMAL_MRIL_BUILDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mril/program.h"

namespace manimal::mril {

class ProgramBuilder;

class FunctionBuilder {
 public:
  // Stack / constants / parameters.
  FunctionBuilder& LoadConst(const Value& v);
  FunctionBuilder& LoadI64(int64_t v) { return LoadConst(Value::I64(v)); }
  FunctionBuilder& LoadF64(double v) { return LoadConst(Value::F64(v)); }
  FunctionBuilder& LoadStr(std::string s) {
    return LoadConst(Value::Str(std::move(s)));
  }
  FunctionBuilder& LoadParam(int idx);
  FunctionBuilder& LoadLocal(int slot);
  FunctionBuilder& StoreLocal(int slot);
  FunctionBuilder& LoadMember(std::string_view name);
  FunctionBuilder& StoreMember(std::string_view name);

  // Field access on the map value record: by name (resolved against the
  // program's value schema) or by index.
  FunctionBuilder& GetField(std::string_view field_name);
  FunctionBuilder& GetFieldIndex(int idx);

  FunctionBuilder& Dup();
  FunctionBuilder& Pop();
  FunctionBuilder& Swap();

  FunctionBuilder& Add();
  FunctionBuilder& Sub();
  FunctionBuilder& Mul();
  FunctionBuilder& Div();
  FunctionBuilder& Mod();
  FunctionBuilder& Neg();

  FunctionBuilder& CmpLt();
  FunctionBuilder& CmpLe();
  FunctionBuilder& CmpGt();
  FunctionBuilder& CmpGe();
  FunctionBuilder& CmpEq();
  FunctionBuilder& CmpNe();
  FunctionBuilder& And();
  FunctionBuilder& Or();
  FunctionBuilder& Not();

  FunctionBuilder& Jmp(std::string_view label);
  FunctionBuilder& JmpIfTrue(std::string_view label);
  FunctionBuilder& JmpIfFalse(std::string_view label);
  FunctionBuilder& Label(std::string_view label);

  // Calls a builtin by name; aborts if unknown (builder misuse is a
  // programming error, not user input).
  FunctionBuilder& Call(std::string_view builtin_name);

  FunctionBuilder& Emit();
  FunctionBuilder& Log();
  FunctionBuilder& Ret();

  // Allocates a fresh local slot.
  int NewLocal();

 private:
  friend class ProgramBuilder;
  FunctionBuilder(ProgramBuilder* parent, std::string name, int num_params);

  FunctionBuilder& Push(Opcode op, int32_t operand = 0);
  Function Finish();

  ProgramBuilder* parent_;
  Function fn_;
  // label -> instruction index
  std::map<std::string, int, std::less<>> labels_;
  // instruction index -> label (patched at Finish)
  std::vector<std::pair<int, std::string>> pending_jumps_;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  ProgramBuilder& SetKeyType(FieldType t);
  ProgramBuilder& SetValueSchema(Schema schema);
  // Declares the map value parameter as a custom-serialized blob (the
  // AbstractTuple model).
  ProgramBuilder& SetOpaqueValue();
  ProgramBuilder& RequireSortedOutput();
  ProgramBuilder& AddMember(std::string name, Value initial);

  // Begins the map()/reduce() body; exactly one Map() is required.
  FunctionBuilder& Map();
  FunctionBuilder& Reduce();

  // Finalizes the program (resolves labels). Aborts on builder misuse
  // such as unresolved labels.
  Program Build();

 private:
  friend class FunctionBuilder;
  Program program_;
  std::unique_ptr<FunctionBuilder> map_builder_;
  std::unique_ptr<FunctionBuilder> reduce_builder_;
};

}  // namespace manimal::mril

#endif  // MANIMAL_MRIL_BUILDER_H_
