#include "mril/verifier.h"

#include <vector>

#include "common/strings.h"
#include "mril/builtins.h"

namespace manimal::mril {

namespace {

Status Err(const Function& fn, int pc, const std::string& what) {
  return Status::InvalidArgument(
      StrPrintf("%s@%d: %s", fn.name.c_str(), pc, what.c_str()));
}

// Number of values this instruction pops (resolving kCall arity).
Result<int> PopCount(const Function& fn, int pc) {
  const Instruction& inst = fn.code[pc];
  const OpcodeInfo& info = GetOpcodeInfo(inst.op);
  if (inst.op != Opcode::kCall) return info.pops;
  const Builtin* b = BuiltinRegistry::Get().FindById(inst.operand);
  if (b == nullptr) return Err(fn, pc, "unknown builtin id");
  return b->arity;
}

}  // namespace

Status VerifyFunction(const Program& program, const Function& fn) {
  const int n = static_cast<int>(fn.code.size());
  if (n == 0) return Err(fn, 0, "empty function body");
  if (fn.code.back().op != Opcode::kJmp &&
      fn.code.back().op != Opcode::kReturn) {
    return Err(fn, n - 1, "function may fall off the end");
  }

  // --- operand range checks ---
  for (int pc = 0; pc < n; ++pc) {
    const Instruction& inst = fn.code[pc];
    int32_t x = inst.operand;
    switch (inst.op) {
      case Opcode::kLoadConst:
        if (x < 0 || x >= static_cast<int>(program.constants.size())) {
          return Err(fn, pc, "constant index out of range");
        }
        break;
      case Opcode::kLoadParam:
        if (x < 0 || x >= fn.num_params) {
          return Err(fn, pc, "parameter index out of range");
        }
        break;
      case Opcode::kLoadLocal:
      case Opcode::kStoreLocal:
        if (x < 0 || x >= fn.num_locals) {
          return Err(fn, pc, "local slot out of range");
        }
        break;
      case Opcode::kLoadMember:
      case Opcode::kStoreMember:
        if (x < 0 || x >= static_cast<int>(program.members.size())) {
          return Err(fn, pc, "member index out of range");
        }
        break;
      case Opcode::kGetField:
        if (fn.name == "map") {
          if (program.value_param_kind == ValueParamKind::kOpaque) {
            return Err(fn, pc,
                       "get_field on opaque value parameter (use the "
                       "opaque.get_* builtins)");
          }
          if (x < 0 || x >= program.value_schema.num_fields()) {
            return Err(fn, pc, "field index out of range for value schema");
          }
        } else {
          if (x < 0) return Err(fn, pc, "negative field index");
        }
        break;
      case Opcode::kJmp:
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse:
        if (x < 0 || x >= n) {
          return Err(fn, pc, "jump target out of range");
        }
        break;
      case Opcode::kCall:
        if (BuiltinRegistry::Get().FindById(x) == nullptr) {
          return Err(fn, pc, "unknown builtin id");
        }
        break;
      default:
        break;
    }
  }

  // --- stack-depth dataflow ---
  std::vector<int> depth_at(n, -1);  // -1: not yet reached
  std::vector<int> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);

  auto propagate = [&](int target, int depth) -> Status {
    if (depth < 0) {
      return Status::InvalidArgument(
          StrPrintf("%s: negative stack depth into %d", fn.name.c_str(),
                    target));
    }
    if (depth_at[target] == -1) {
      depth_at[target] = depth;
      worklist.push_back(target);
    } else if (depth_at[target] != depth) {
      return Status::InvalidArgument(StrPrintf(
          "%s@%d: inconsistent stack depth (%d vs %d)", fn.name.c_str(),
          target, depth_at[target], depth));
    }
    return Status::OK();
  };

  while (!worklist.empty()) {
    int pc = worklist.back();
    worklist.pop_back();
    const Instruction& inst = fn.code[pc];
    const OpcodeInfo& info = GetOpcodeInfo(inst.op);
    MANIMAL_ASSIGN_OR_RETURN(int pops, PopCount(fn, pc));
    int depth = depth_at[pc];
    if (depth < pops) {
      return Err(fn, pc, StrPrintf("stack underflow (depth %d, pops %d)",
                                   depth, pops));
    }
    int after = depth - pops + info.pushes;

    switch (inst.op) {
      case Opcode::kReturn:
        if (after != 0) {
          return Err(fn, pc, StrPrintf("return with stack depth %d", after));
        }
        break;
      case Opcode::kJmp:
        if (after != 0) {
          return Err(fn, pc, "jump with non-empty stack");
        }
        MANIMAL_RETURN_IF_ERROR(propagate(inst.operand, 0));
        break;
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse:
        if (after != 0) {
          return Err(fn, pc, "conditional jump with non-empty stack");
        }
        MANIMAL_RETURN_IF_ERROR(propagate(inst.operand, 0));
        if (pc + 1 >= n) return Err(fn, pc, "branch at end of function");
        MANIMAL_RETURN_IF_ERROR(propagate(pc + 1, 0));
        break;
      default:
        if (pc + 1 >= n) return Err(fn, pc, "falls off end of function");
        MANIMAL_RETURN_IF_ERROR(propagate(pc + 1, after));
        break;
    }
  }
  return Status::OK();
}

Status VerifyProgram(const Program& program) {
  if (program.map_fn.name != "map") {
    return Status::InvalidArgument("map function must be named 'map'");
  }
  if (program.map_fn.num_params != 2) {
    return Status::InvalidArgument("map() must take (key, value)");
  }
  MANIMAL_RETURN_IF_ERROR(VerifyFunction(program, program.map_fn));
  if (program.reduce_fn.has_value()) {
    if (program.reduce_fn->num_params != 2) {
      return Status::InvalidArgument("reduce() must take (key, values)");
    }
    MANIMAL_RETURN_IF_ERROR(VerifyFunction(program, *program.reduce_fn));
  }
  for (const Value& c : program.constants) {
    if (c.is_handle()) {
      return Status::InvalidArgument("handle values cannot be constants");
    }
  }
  return Status::OK();
}

}  // namespace manimal::mril
