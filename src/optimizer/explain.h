// EXPLAIN / EXPLAIN ANALYZE — plan introspection (docs/observability.md).
//
// EXPLAIN answers "what did the optimizer consider, and why did it
// pick this plan": the full candidate set — chosen, rejected, and
// uncataloged — with each candidate's estimated cost (bytes moved),
// estimated selectivity, and the artifact it would use. EXPLAIN
// ANALYZE additionally attaches what the fabric actually measured:
// per-task runtime stats, per-phase wall time and bytes, and the
// observed per-interval selectivity of the selection predicate,
// joined against the B+Tree-derived estimates into a drift report
// (the feedback signal a stats-driven cost model needs).
//
// Both render as text (ToText) and as a single JSON object (ToJson,
// stable field names, "explain_version" currently 1). The report is
// produced by core::ManimalSystem when JobConfig/environment asks for
// it (MANIMAL_EXPLAIN=plan|analyze), but MakeExplainReport is usable
// directly by any caller that holds a Plan (and optionally the
// JobResult of running it).

#ifndef MANIMAL_OPTIMIZER_EXPLAIN_H_
#define MANIMAL_OPTIMIZER_EXPLAIN_H_

#include <string>
#include <utility>
#include <vector>

#include "exec/engine.h"

namespace manimal::optimizer {

struct Plan;  // optimizer.h; explain.cc sees the full definition

// Version of the ToJson() schema. Bump on rename/removal/semantic
// change of a field; additions are backward-compatible.
inline constexpr int kExplainSchemaVersion = 1;

enum class ExplainMode {
  kOff,
  kPlan,     // EXPLAIN: candidate set + chosen plan
  kAnalyze,  // EXPLAIN ANALYZE: + runtime stats and drift report
};

// Parses MANIMAL_EXPLAIN: "plan" / "1" / "on" / "true" -> kPlan,
// "analyze" / "2" -> kAnalyze, anything else (or unset) -> kOff.
ExplainMode ExplainModeFromEnv();

const char* ExplainModeName(ExplainMode mode);

// One synthesized index-generation candidate as the optimizer saw it.
struct CandidateExplain {
  std::string describe;   // IndexGenProgram::Describe()
  std::string signature;  // catalog lookup key
  // "chosen" | "rejected" | "uncataloged" (no artifact built yet).
  std::string verdict;
  std::string reason;  // why rejected / why chosen; "" if n/a
  bool cataloged = false;
  bool chosen = false;
  std::string artifact_path;  // "" when uncataloged
  // Cost-model output for cataloged candidates; negative = not priced
  // (uncataloged, or pricing failed).
  double est_bytes = -1;
  double est_selectivity = -1;
  // Which estimator produced est_selectivity: "histogram" (catalog
  // column stats), "btree-fanout" (root fan-out heuristic), or
  // "observed" (mid-job feedback). "" when nothing was priced.
  std::string provenance;
  std::string cost_detail;
  // Per-interval estimated selectivity for B+Tree candidates:
  // (KeyInterval::ToString(), fraction).
  std::vector<std::pair<std::string, double>> interval_selectivity;
};

// The optimizer's side of the report, filled by BuildPlan.
struct PlanExplain {
  std::string program;
  std::string input_path;
  std::string mode;     // "rule" | "cost"
  std::string summary;  // Plan::explanation
  std::string access_path;  // chosen plan's AccessPathName
  bool optimized = false;
  std::vector<std::string> applied;
  // The selection predicate in DNF ("" when none detected).
  std::string predicate;
  // Chosen plan's estimates; negative = unknown (e.g. rule-based
  // baseline with nothing priced).
  double est_selectivity = -1;
  double est_bytes = -1;
  // Estimator behind est_selectivity ("histogram" / "btree-fanout" /
  // "observed"); "" when unknown.
  std::string est_provenance;
  // Size of the raw input = cost of the conventional full scan.
  double baseline_bytes = -1;
  std::vector<CandidateExplain> candidates;

  // ---- native codegen tier (docs/mril.md "Native kernels") ----
  // Whether codegen::ExtractShape admits the chosen plan's (possibly
  // patched) program, and the shape description / admission-gate
  // reason. The engine makes the final per-job backend call (see
  // ExplainReport::backend), but eligibility is a plan property.
  bool native_eligible = false;
  std::string native_detail;
};

// One row of the estimated-vs-actual selectivity comparison, keyed by
// predicate interval. `estimated` comes from the B+Tree root fan-out
// (negative when no cataloged tree could price the interval);
// `observed` is matches/records from the fabric's per-record
// evaluation (negative when the run did not observe predicates).
struct DriftRow {
  std::string predicate;
  double estimated = -1;
  double observed = -1;
};

// The full EXPLAIN (ANALYZE) report.
struct ExplainReport {
  PlanExplain plan;

  // ---- EXPLAIN ANALYZE section (analyzed == true) ----
  bool analyzed = false;
  std::string job_id;
  uint64_t rows_scanned = 0;
  uint64_t rows_emitted = 0;  // incl. pre-shuffle filtered pairs
  // rows_emitted / rows_scanned; negative when rows_scanned == 0.
  double observed_selectivity = -1;
  // True when the fabric evaluated the predicate per record (plan
  // carried hooks, stats collection on, layout unremapped). NOTE:
  // under a B+Tree plan the scan already skips non-matching rows, so
  // observed per-interval selectivity measures index precision; a
  // seqscan plan observes ground truth.
  bool predicates_observed = false;
  std::vector<DriftRow> drift;
  // Adaptive replanning outcome (replan.switched == false when the
  // run never switched plans).
  exec::ReplanStat replan;
  std::vector<std::pair<std::string, exec::PhaseStat>> phases;
  std::vector<exec::TaskStat> tasks;
  exec::JobCounters counters;
  double wall_seconds = 0;
  double reported_seconds = 0;
  // Resolved map backend for the measured run ("vm" / "native") and
  // the kernel description / fallback reason (JobResult::backend).
  std::string backend;
  std::string backend_detail;

  // Multi-line human-readable rendering.
  std::string ToText() const;
  // One JSON object (no trailing newline), stable schema
  // ("explain_version": 1). Numeric estimate fields that are unknown
  // (negative sentinels) are omitted.
  std::string ToJson() const;
};

// EXPLAIN: plan-only report.
ExplainReport MakeExplainReport(const Plan& plan);
// EXPLAIN ANALYZE: joins the plan against the measured JobResult
// (task stats, phase breakdown, observed selectivity, drift).
ExplainReport MakeExplainReport(const Plan& plan,
                                const exec::JobResult& result);

}  // namespace manimal::optimizer

#endif  // MANIMAL_OPTIMIZER_EXPLAIN_H_
