// Cost estimation for candidate execution plans — the cost-based
// planning the paper defers (§2.2: the optimizer's choices "in the
// long run should be determined by a cost-based approach, but for now
// are solved with simple rule-based heuristics").
//
// The cost unit is estimated BYTES MOVED by the map phase, the
// quantity the whole evaluation shows performance tracks. Predicate
// selectivity comes from, in order of preference:
//
//   1. "observed"      — actual selectivity reported by the running
//                        job's first committed splits (mid-job
//                        replanning feedback);
//   2. "histogram"     — the per-column equi-depth histograms and
//                        distinct-count sketches collected at
//                        index-build time (src/stats/);
//   3. "btree-fanout"  — the B+Tree's own root fan-out, an implicit
//                        equi-depth histogram of the key distribution
//                        needing no statistics infrastructure.
//
// The chosen source is recorded as the estimate's provenance and
// surfaces in EXPLAIN.

#ifndef MANIMAL_OPTIMIZER_COST_H_
#define MANIMAL_OPTIMIZER_COST_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analyzer/analyzer.h"
#include "common/status.h"
#include "index/btree.h"
#include "index/catalog.h"
#include "stats/stats.h"

namespace manimal::optimizer {

struct CandidateCost {
  // Estimated bytes the map phase reads under this candidate.
  double bytes = 0;
  // Estimated matching fraction (1.0 for full scans).
  double selectivity = 1.0;
  // Which estimator produced `selectivity`: "histogram",
  // "btree-fanout", "observed", or "" when no selectivity estimate
  // applies (plain full scans).
  std::string provenance;
  std::string detail;  // human-readable breakdown
  // Per-interval breakdown of `selectivity`: (KeyInterval::ToString(),
  // estimated fraction) per canonicalized selection interval. EXPLAIN
  // ANALYZE joins these against the fabric's observed per-interval
  // match counts to produce the estimated-vs-actual drift report.
  // Empty when no selection applies.
  std::vector<std::pair<std::string, double>> interval_selectivity;
};

// Sorts selection intervals by lower bound, drops empty ones, and
// merges overlapping or adjacent ones, so that summing per-interval
// fractions never counts a key range twice (un-simplified DNF can
// produce overlapping intervals; the analyzer usually pre-merges, but
// correctness must not depend on it).
std::vector<analyzer::KeyInterval> CanonicalizeIntervals(
    std::vector<analyzer::KeyInterval> intervals);

// Estimated matching fraction of `intervals` (canonicalized
// internally). Uses `column` histograms when usable, else the tree's
// root fan-out; exactly one of `tree` / `column` may be null. Appends
// the per-interval breakdown to *per_interval and names the estimator
// in *provenance. Exposed for tests.
Result<double> EstimateSelectivity(
    const index::BTreeReader* tree, const stats::ColumnStats* column,
    const std::vector<analyzer::KeyInterval>& intervals,
    std::vector<std::pair<std::string, double>>* per_interval,
    std::string* provenance);

// Optional inputs that sharpen the estimates.
struct CostContext {
  // Column statistics for the candidate's input file (nullable).
  const stats::TableStats* stats = nullptr;
  // Ground-truth selectivity observed by a running job's first
  // committed splits; set when replanning mid-job.
  std::optional<double> observed_selectivity;
};

// Cost of a cataloged artifact for this program/report. Opens the
// artifact's metadata (footers/manifests only — O(1) I/O).
Result<CandidateCost> EstimateArtifactCost(
    const analyzer::IndexGenProgram& spec,
    const index::CatalogEntry& entry,
    const analyzer::AnalysisReport& report,
    const CostContext& context);
inline Result<CandidateCost> EstimateArtifactCost(
    const analyzer::IndexGenProgram& spec,
    const index::CatalogEntry& entry,
    const analyzer::AnalysisReport& report) {
  return EstimateArtifactCost(spec, entry, report, CostContext());
}

// Cost of the conventional full scan.
CandidateCost BaselineCost(uint64_t input_bytes);

}  // namespace manimal::optimizer

#endif  // MANIMAL_OPTIMIZER_COST_H_
