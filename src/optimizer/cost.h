// Cost estimation for candidate execution plans — the cost-based
// planning the paper defers (§2.2: the optimizer's choices "in the
// long run should be determined by a cost-based approach, but for now
// are solved with simple rule-based heuristics").
//
// The cost unit is estimated BYTES MOVED by the map phase, the
// quantity the whole evaluation shows performance tracks. Selectivity
// for B+Tree candidates is estimated from the tree itself: its root
// fan-out is an equi-depth histogram of the key distribution, so the
// fraction of root children overlapping the scan intervals
// approximates the matching-entry fraction with no extra statistics
// infrastructure.

#ifndef MANIMAL_OPTIMIZER_COST_H_
#define MANIMAL_OPTIMIZER_COST_H_

#include <string>
#include <utility>
#include <vector>

#include "analyzer/analyzer.h"
#include "common/status.h"
#include "index/catalog.h"

namespace manimal::optimizer {

struct CandidateCost {
  // Estimated bytes the map phase reads under this candidate.
  double bytes = 0;
  // Estimated matching fraction (1.0 for full scans).
  double selectivity = 1.0;
  std::string detail;  // human-readable breakdown
  // Per-interval breakdown of `selectivity` for B+Tree candidates:
  // (KeyInterval::ToString(), estimated fraction) per selection
  // interval, in formula order. EXPLAIN ANALYZE joins these against
  // the fabric's observed per-interval match counts to produce the
  // estimated-vs-actual drift report. Empty for non-B+Tree
  // candidates.
  std::vector<std::pair<std::string, double>> interval_selectivity;
};

// Cost of a cataloged artifact for this program/report. Opens the
// artifact's metadata (footers/manifests only — O(1) I/O).
Result<CandidateCost> EstimateArtifactCost(
    const analyzer::IndexGenProgram& spec,
    const index::CatalogEntry& entry,
    const analyzer::AnalysisReport& report);

// Cost of the conventional full scan.
CandidateCost BaselineCost(uint64_t input_bytes);

}  // namespace manimal::optimizer

#endif  // MANIMAL_OPTIMIZER_COST_H_
