#include "optimizer/cost.h"

#include <algorithm>

#include "columnar/column_groups.h"
#include "common/env.h"
#include "common/strings.h"
#include "index/btree.h"
#include "serde/key_codec.h"

namespace manimal::optimizer {

namespace {

// Encodes the selection intervals as byte bounds and sums the
// estimated matching fraction over the (disjoint) intervals,
// recording the per-interval breakdown into *per_interval for the
// EXPLAIN drift report.
Result<double> EstimateSelectivity(
    const index::BTreeReader& tree,
    const std::vector<analyzer::KeyInterval>& intervals,
    std::vector<std::pair<std::string, double>>* per_interval) {
  if (intervals.empty()) return 1.0;  // full index scan
  double total = 0;
  for (const analyzer::KeyInterval& iv : intervals) {
    std::optional<std::string> lo, hi;
    if (iv.lo.has_value()) {
      std::string bytes;
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(*iv.lo, &bytes));
      lo = std::move(bytes);
    }
    if (iv.hi.has_value()) {
      std::string bytes;
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(*iv.hi, &bytes));
      hi = std::move(bytes);
    }
    MANIMAL_ASSIGN_OR_RETURN(double fraction,
                             tree.EstimateRangeFraction(lo, hi));
    per_interval->emplace_back(iv.ToString(), fraction);
    total += fraction;
  }
  return std::min(1.0, total);
}

}  // namespace

CandidateCost BaselineCost(uint64_t input_bytes) {
  CandidateCost cost;
  cost.bytes = static_cast<double>(input_bytes);
  cost.selectivity = 1.0;
  cost.detail = "full scan of " + HumanBytes(input_bytes);
  return cost;
}

Result<CandidateCost> EstimateArtifactCost(
    const analyzer::IndexGenProgram& spec,
    const index::CatalogEntry& entry,
    const analyzer::AnalysisReport& report) {
  CandidateCost cost;

  if (spec.column_groups) {
    MANIMAL_ASSIGN_OR_RETURN(
        std::shared_ptr<columnar::ColumnGroupReader> reader,
        columnar::ColumnGroupReader::Open(entry.artifact_path));
    std::vector<int> needed;
    if (report.projection.has_value()) {
      needed = report.projection->used_fields;
    }
    auto selection = reader->SelectGroups(needed);
    cost.bytes = static_cast<double>(selection.bytes);
    cost.detail = StrPrintf("column groups: %zu groups, %s",
                            selection.group_indexes.size(),
                            HumanBytes(selection.bytes).c_str());
    return cost;
  }

  if (spec.btree) {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<index::BTreeReader> tree,
                             index::BTreeReader::Open(entry.artifact_path));
    const std::vector<analyzer::KeyInterval>& intervals =
        report.selection.has_value()
            ? report.selection->intervals
            : std::vector<analyzer::KeyInterval>{};
    MANIMAL_ASSIGN_OR_RETURN(
        double selectivity,
        EstimateSelectivity(*tree, intervals,
                            &cost.interval_selectivity));
    cost.selectivity = selectivity;
    if (spec.clustered) {
      // Embedded records: bytes scale with selectivity.
      cost.bytes = selectivity * static_cast<double>(tree->file_size());
      cost.detail = StrPrintf("clustered btree: sel %.3f of %s",
                              selectivity,
                              HumanBytes(tree->file_size()).c_str());
      return cost;
    }
    // Locator tree: matching index entries plus the touched base
    // blocks (each match may decode one block; capped by the base
    // size).
    MANIMAL_ASSIGN_OR_RETURN(uint64_t base_bytes,
                             GetFileSize(entry.base_path));
    double index_bytes =
        selectivity * static_cast<double>(tree->file_size());
    double matches =
        selectivity * static_cast<double>(tree->num_entries());
    constexpr double kBlockBytes = 16 * 1024;
    double touched =
        std::min(static_cast<double>(base_bytes), matches * kBlockBytes);
    cost.bytes = index_bytes + touched;
    cost.detail = StrPrintf(
        "locator btree: sel %.3f, index %s + <=%s of base", selectivity,
        HumanBytes(static_cast<uint64_t>(index_bytes)).c_str(),
        HumanBytes(static_cast<uint64_t>(touched)).c_str());
    return cost;
  }

  // Re-encoded SeqFile artifacts (projection / delta / dictionary):
  // full scan of the artifact.
  cost.bytes = static_cast<double>(entry.artifact_bytes);
  cost.detail =
      "artifact scan of " + HumanBytes(entry.artifact_bytes);
  return cost;
}

}  // namespace manimal::optimizer
