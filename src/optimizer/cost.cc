#include "optimizer/cost.h"

#include <algorithm>

#include "columnar/column_groups.h"
#include "columnar/seqfile.h"
#include "common/env.h"
#include "common/strings.h"
#include "serde/key_codec.h"

namespace manimal::optimizer {

namespace {

// -1 / 0 / +1 comparison of interval LOWER bounds; nullopt = -inf.
// Ties on value order inclusive (covers more) first.
int CompareLower(const analyzer::KeyInterval& a,
                 const analyzer::KeyInterval& b) {
  if (!a.lo.has_value() || !b.lo.has_value()) {
    if (a.lo.has_value() == b.lo.has_value()) return 0;
    return a.lo.has_value() ? 1 : -1;
  }
  int c = a.lo->Compare(*b.lo);
  if (c != 0) return c;
  if (a.lo_inclusive == b.lo_inclusive) return 0;
  return a.lo_inclusive ? -1 : 1;
}

// -1 / 0 / +1 comparison of UPPER bounds; nullopt = +inf. Ties on
// value order inclusive (covers more) last.
int CompareUpper(const analyzer::KeyInterval& a,
                 const analyzer::KeyInterval& b) {
  if (!a.hi.has_value() || !b.hi.has_value()) {
    if (a.hi.has_value() == b.hi.has_value()) return 0;
    return a.hi.has_value() ? -1 : 1;
  }
  int c = a.hi->Compare(*b.hi);
  if (c != 0) return c;
  if (a.hi_inclusive == b.hi_inclusive) return 0;
  return a.hi_inclusive ? 1 : -1;
}

// True when [a, b] overlap or touch so their union is one interval:
// a's upper bound reaches b's lower bound (given CompareLower(a,b)<=0).
bool MergeableWith(const analyzer::KeyInterval& a,
                   const analyzer::KeyInterval& b) {
  if (!a.hi.has_value() || !b.lo.has_value()) return true;
  int c = b.lo->Compare(*a.hi);
  if (c != 0) return c < 0;
  // Touching bounds: [x,5] ∪ [5,y] and [x,5] ∪ (5,y] merge; the union
  // of (x,5) and (5,y) genuinely excludes 5, so those stay apart.
  return a.hi_inclusive || b.lo_inclusive;
}

bool IsEmpty(const analyzer::KeyInterval& iv) {
  if (!iv.lo.has_value() || !iv.hi.has_value()) return false;
  int c = iv.lo->Compare(*iv.hi);
  if (c > 0) return true;
  return c == 0 && !(iv.lo_inclusive && iv.hi_inclusive);
}

}  // namespace

std::vector<analyzer::KeyInterval> CanonicalizeIntervals(
    std::vector<analyzer::KeyInterval> intervals) {
  intervals.erase(
      std::remove_if(intervals.begin(), intervals.end(), IsEmpty),
      intervals.end());
  std::stable_sort(intervals.begin(), intervals.end(),
                   [](const analyzer::KeyInterval& a,
                      const analyzer::KeyInterval& b) {
                     int c = CompareLower(a, b);
                     if (c != 0) return c < 0;
                     return CompareUpper(a, b) < 0;
                   });
  std::vector<analyzer::KeyInterval> merged;
  for (analyzer::KeyInterval& iv : intervals) {
    if (!merged.empty() && MergeableWith(merged.back(), iv)) {
      if (CompareUpper(merged.back(), iv) < 0) {
        merged.back().hi = iv.hi;
        merged.back().hi_inclusive = iv.hi_inclusive;
      }
    } else {
      merged.push_back(std::move(iv));
    }
  }
  return merged;
}

Result<double> EstimateSelectivity(
    const index::BTreeReader* tree, const stats::ColumnStats* column,
    const std::vector<analyzer::KeyInterval>& intervals,
    std::vector<std::pair<std::string, double>>* per_interval,
    std::string* provenance) {
  const bool use_stats = column != nullptr && column->usable();
  if (!use_stats && tree == nullptr) {
    return Status::InvalidArgument(
        "selectivity estimation needs a histogram or a tree");
  }
  *provenance = use_stats ? "histogram" : "btree-fanout";
  if (intervals.empty()) return 1.0;  // full index scan
  double total = 0;
  for (const analyzer::KeyInterval& iv : CanonicalizeIntervals(intervals)) {
    std::optional<std::string> lo, hi;
    if (iv.lo.has_value()) {
      std::string bytes;
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(*iv.lo, &bytes));
      lo = std::move(bytes);
    }
    if (iv.hi.has_value()) {
      std::string bytes;
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(*iv.hi, &bytes));
      hi = std::move(bytes);
    }
    double fraction = 0;
    if (use_stats) {
      fraction = column->EstimateRangeFraction(lo, iv.lo_inclusive, hi,
                                               iv.hi_inclusive);
    } else {
      MANIMAL_ASSIGN_OR_RETURN(fraction,
                               tree->EstimateRangeFraction(lo, hi));
    }
    per_interval->emplace_back(iv.ToString(), fraction);
    total += fraction;
  }
  // Canonicalized intervals are disjoint, so the sum is a probability;
  // the clamp only guards floating-point slop.
  return std::min(1.0, total);
}

namespace {

// The stats column matching the report's indexed key expression:
// "expr:<expr>" as collected by B+Tree builds, falling back to the
// per-field column when the expression is a plain field of the map
// value parameter (param 1).
const stats::ColumnStats* StatsColumnFor(
    const CostContext& context, const analyzer::AnalysisReport& report) {
  if (context.stats == nullptr || !report.selection.has_value()) {
    return nullptr;
  }
  const analysis::ExprRef& expr = report.selection->indexed_expr;
  if (expr == nullptr) return nullptr;
  const stats::ColumnStats* column =
      context.stats->Find("expr:" + expr->ToString());
  if (column == nullptr && expr->kind == analysis::Expr::Kind::kField &&
      expr->index >= 0 && !expr->args.empty() &&
      expr->args[0] != nullptr &&
      expr->args[0]->kind == analysis::Expr::Kind::kParam &&
      expr->args[0]->index == 1) {
    column = context.stats->Find("field:" + std::to_string(expr->index));
  }
  return column;
}

}  // namespace

CandidateCost BaselineCost(uint64_t input_bytes) {
  CandidateCost cost;
  cost.bytes = static_cast<double>(input_bytes);
  cost.selectivity = 1.0;
  cost.detail = "full scan of " + HumanBytes(input_bytes);
  return cost;
}

Result<CandidateCost> EstimateArtifactCost(
    const analyzer::IndexGenProgram& spec,
    const index::CatalogEntry& entry,
    const analyzer::AnalysisReport& report,
    const CostContext& context) {
  CandidateCost cost;
  const stats::ColumnStats* column = StatsColumnFor(context, report);
  const std::vector<analyzer::KeyInterval> no_intervals;
  const std::vector<analyzer::KeyInterval>& intervals =
      report.selection.has_value() ? report.selection->intervals
                                   : no_intervals;

  if (spec.column_groups) {
    MANIMAL_ASSIGN_OR_RETURN(
        std::shared_ptr<columnar::ColumnGroupReader> reader,
        columnar::ColumnGroupReader::Open(entry.artifact_path));
    std::vector<int> needed;
    if (report.projection.has_value()) {
      needed = report.projection->used_fields;
    }
    auto selection = reader->SelectGroups(needed);
    cost.bytes = static_cast<double>(selection.bytes);
    // Column groups read whole groups regardless of the predicate, but
    // a histogram still prices its selectivity for EXPLAIN/drift.
    if (column != nullptr && !intervals.empty()) {
      MANIMAL_ASSIGN_OR_RETURN(
          cost.selectivity,
          EstimateSelectivity(nullptr, column, intervals,
                              &cost.interval_selectivity,
                              &cost.provenance));
    }
    cost.detail = StrPrintf("column groups: %zu groups, %s",
                            selection.group_indexes.size(),
                            HumanBytes(selection.bytes).c_str());
    return cost;
  }

  if (spec.btree) {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<index::BTreeReader> tree,
                             index::BTreeReader::Open(entry.artifact_path));
    MANIMAL_ASSIGN_OR_RETURN(
        double selectivity,
        EstimateSelectivity(tree.get(), column, intervals,
                            &cost.interval_selectivity,
                            &cost.provenance));
    if (context.observed_selectivity.has_value()) {
      // Mid-job feedback outranks any model: the first committed
      // splits measured the real matching fraction.
      selectivity = std::clamp(*context.observed_selectivity, 0.0, 1.0);
      cost.provenance = "observed";
    }
    cost.selectivity = selectivity;
    if (spec.clustered) {
      // Embedded records: bytes scale with selectivity.
      cost.bytes = selectivity * static_cast<double>(tree->file_size());
      cost.detail = StrPrintf("clustered btree: sel %.3f of %s",
                              selectivity,
                              HumanBytes(tree->file_size()).c_str());
      return cost;
    }
    // Locator tree: matching index entries plus the touched base
    // blocks (each match may decode one block; capped by the base
    // size). Block size comes from the base file's own footer — the
    // writer's 16 KiB target is only a target, and single wide records
    // routinely blow past it.
    MANIMAL_ASSIGN_OR_RETURN(
        std::shared_ptr<columnar::SeqFileReader> base,
        columnar::SeqFileReader::Open(entry.base_path));
    const double base_bytes = static_cast<double>(base->file_size());
    double block_bytes = base->average_block_bytes();
    if (block_bytes <= 0) {
      block_bytes = 16 * 1024;  // empty base: fall back to the target
    }
    double index_bytes =
        selectivity * static_cast<double>(tree->file_size());
    double matches =
        selectivity * static_cast<double>(tree->num_entries());
    double touched = std::min(base_bytes, matches * block_bytes);
    cost.bytes = index_bytes + touched;
    cost.detail = StrPrintf(
        "locator btree: sel %.3f, index %s + <=%s of base "
        "(%s avg block)",
        selectivity,
        HumanBytes(static_cast<uint64_t>(index_bytes)).c_str(),
        HumanBytes(static_cast<uint64_t>(touched)).c_str(),
        HumanBytes(static_cast<uint64_t>(block_bytes)).c_str());
    return cost;
  }

  // Re-encoded SeqFile artifacts (projection / delta / dictionary):
  // full scan of the artifact, with histogram-priced selectivity for
  // EXPLAIN/drift when stats exist.
  if (column != nullptr && !intervals.empty()) {
    MANIMAL_ASSIGN_OR_RETURN(
        cost.selectivity,
        EstimateSelectivity(nullptr, column, intervals,
                            &cost.interval_selectivity,
                            &cost.provenance));
  }
  cost.bytes = static_cast<double>(entry.artifact_bytes);
  cost.detail =
      "artifact scan of " + HumanBytes(entry.artifact_bytes);

  // Block-compressed (v2) artifacts are priced on BOTH axes: the
  // compressed bytes scanned off disk plus a discounted charge for the
  // uncompressed bytes the scan must materialize (decompression is
  // CPU, not I/O — cheaper per byte than the disk rate the unit cost
  // models). When the artifact carries skip frames and the predicate
  // is selective, direct evaluation touches only blocks that can hold
  // a match: about min(1, selectivity * records-per-block) of them
  // under a uniform spread, and touch discounts both axes because an
  // elided block is neither read nor decoded.
  if (!entry.codec_chain.empty() || entry.raw_bytes > 0) {
    constexpr double kDecodedByteWeight = 0.25;
    Result<std::shared_ptr<columnar::SeqFileReader>> reader =
        columnar::SeqFileReader::Open(entry.artifact_path);
    if (reader.ok()) {
      double touch = 1.0;
      if ((*reader)->has_skip_frames() && cost.selectivity < 1.0 &&
          (*reader)->num_blocks() > 0) {
        const double records_per_block =
            static_cast<double>((*reader)->num_records()) /
            static_cast<double>((*reader)->num_blocks());
        touch = std::min(1.0, cost.selectivity *
                                  std::max(1.0, records_per_block));
      }
      const double raw_bytes = static_cast<double>(
          entry.raw_bytes > 0 ? entry.raw_bytes : entry.artifact_bytes);
      cost.bytes =
          touch * (static_cast<double>(entry.artifact_bytes) +
                   kDecodedByteWeight * raw_bytes);
      cost.detail = StrPrintf(
          "artifact scan of %s (codec %s, raw %s): touch %.3f",
          HumanBytes(entry.artifact_bytes).c_str(),
          entry.codec_chain.empty() ? "none" : entry.codec_chain.c_str(),
          HumanBytes(entry.raw_bytes).c_str(), touch);
    }
  }
  return cost;
}

}  // namespace manimal::optimizer
