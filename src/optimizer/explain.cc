#include "optimizer/explain.h"

#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "obs/json.h"
#include "optimizer/optimizer.h"

namespace manimal::optimizer {

using obs::JsonFixed;
using obs::JsonNumber;
using obs::JsonQuote;

ExplainMode ExplainModeFromEnv() {
  const char* v = std::getenv("MANIMAL_EXPLAIN");
  if (v == nullptr || v[0] == '\0') return ExplainMode::kOff;
  if (std::strcmp(v, "analyze") == 0 || std::strcmp(v, "2") == 0) {
    return ExplainMode::kAnalyze;
  }
  if (std::strcmp(v, "plan") == 0 || std::strcmp(v, "1") == 0 ||
      std::strcmp(v, "on") == 0 || std::strcmp(v, "true") == 0) {
    return ExplainMode::kPlan;
  }
  return ExplainMode::kOff;
}

const char* ExplainModeName(ExplainMode mode) {
  switch (mode) {
    case ExplainMode::kOff:
      return "off";
    case ExplainMode::kPlan:
      return "plan";
    case ExplainMode::kAnalyze:
      return "analyze";
  }
  return "off";
}

namespace {

// The per-interval selectivity estimates backing the drift report:
// the chosen candidate's when it has them, else the first cataloged
// candidate's (a rejected B+Tree still carries the best available
// estimate of the predicate's selectivity).
const std::vector<std::pair<std::string, double>>* FindIntervalEstimates(
    const PlanExplain& plan) {
  for (const CandidateExplain& c : plan.candidates) {
    if (c.chosen && !c.interval_selectivity.empty()) {
      return &c.interval_selectivity;
    }
  }
  for (const CandidateExplain& c : plan.candidates) {
    if (!c.interval_selectivity.empty()) return &c.interval_selectivity;
  }
  return nullptr;
}

std::vector<DriftRow> BuildDrift(const PlanExplain& plan,
                                 const exec::JobResult& result) {
  std::vector<DriftRow> drift;
  const auto* estimates = FindIntervalEstimates(plan);
  const double scanned =
      static_cast<double>(result.counters.map_invocations);
  auto observed_for = [&](const std::string& predicate) -> double {
    if (!result.predicates_observed || scanned <= 0) return -1;
    for (const exec::PredicateStat& ps : result.predicate_stats) {
      if (ps.predicate == predicate) {
        return static_cast<double>(ps.matched) / scanned;
      }
    }
    return -1;
  };
  if (estimates != nullptr) {
    for (const auto& [predicate, est] : *estimates) {
      DriftRow row;
      row.predicate = predicate;
      row.estimated = est;
      row.observed = observed_for(predicate);
      drift.push_back(std::move(row));
    }
  }
  // Observed intervals with no estimate (no cataloged B+Tree).
  for (const exec::PredicateStat& ps : result.predicate_stats) {
    bool seen = false;
    for (const DriftRow& row : drift) {
      if (row.predicate == ps.predicate) {
        seen = true;
        break;
      }
    }
    if (!seen && result.predicates_observed && scanned > 0) {
      DriftRow row;
      row.predicate = ps.predicate;
      row.observed = static_cast<double>(ps.matched) / scanned;
      drift.push_back(std::move(row));
    }
  }
  return drift;
}

void AppendOptionalNum(std::string* out, const char* key, double value,
                       bool fixed4 = false) {
  if (value < 0) return;
  *out += ",\"";
  *out += key;
  *out += "\":";
  *out += fixed4 ? JsonFixed(value, 4) : JsonNumber(value);
}

std::string FmtSel(double v) {
  return v < 0 ? std::string("?") : StrPrintf("%.4f", v);
}

}  // namespace

ExplainReport MakeExplainReport(const Plan& plan) {
  ExplainReport report;
  report.plan = plan.explain;
  // Refresh the fields derivable from the Plan itself, so a report is
  // coherent even for a hand-built Plan that skipped BuildPlan.
  if (report.plan.summary.empty()) report.plan.summary = plan.explanation;
  if (report.plan.access_path.empty()) {
    report.plan.access_path =
        exec::AccessPathName(plan.descriptor.access_path);
  }
  if (report.plan.applied.empty()) {
    report.plan.applied = plan.descriptor.applied;
  }
  report.plan.optimized = plan.optimized;
  if (report.plan.native_detail.empty()) {
    report.plan.native_eligible = plan.descriptor.native_eligible;
    report.plan.native_detail = plan.descriptor.native_detail;
  }
  return report;
}

ExplainReport MakeExplainReport(const Plan& plan,
                                const exec::JobResult& result) {
  ExplainReport report = MakeExplainReport(plan);
  report.analyzed = true;
  report.job_id = result.job_id;
  report.counters = result.counters;
  report.rows_scanned = result.counters.map_invocations;
  report.rows_emitted = result.counters.map_output_records +
                        result.counters.map_output_filtered;
  if (report.rows_scanned > 0) {
    report.observed_selectivity =
        static_cast<double>(report.rows_emitted) /
        static_cast<double>(report.rows_scanned);
  }
  report.predicates_observed = result.predicates_observed;
  report.drift = BuildDrift(report.plan, result);
  report.replan = result.replan;
  for (const auto& [name, stat] : result.phase_breakdown) {
    report.phases.emplace_back(name, stat);
  }
  report.tasks = result.task_stats;
  report.wall_seconds = result.wall_seconds;
  report.reported_seconds = result.reported_seconds;
  report.backend = result.backend;
  report.backend_detail = result.backend_detail;
  return report;
}

std::string ExplainReport::ToText() const {
  std::string out;
  out += StrPrintf("EXPLAIN%s %s on %s (mode=%s)\n",
                   analyzed ? " ANALYZE" : "", plan.program.c_str(),
                   plan.input_path.c_str(), plan.mode.c_str());
  out += StrPrintf("plan: access_path=%s optimized=%s\n",
                   plan.access_path.c_str(),
                   plan.optimized ? "yes" : "no");
  out += "  summary: " + plan.summary + "\n";
  if (!plan.applied.empty()) {
    out += "  applied: ";
    for (size_t i = 0; i < plan.applied.size(); ++i) {
      if (i > 0) out += "; ";
      out += plan.applied[i];
    }
    out += "\n";
  }
  if (!plan.predicate.empty()) {
    out += "  predicate: " + plan.predicate + "\n";
  }
  if (!plan.native_detail.empty()) {
    out += StrPrintf("  native: eligible=%s (%s)\n",
                     plan.native_eligible ? "yes" : "no",
                     plan.native_detail.c_str());
  }
  if (plan.est_bytes >= 0 || plan.est_selectivity >= 0 ||
      plan.baseline_bytes >= 0) {
    out += "  estimated:";
    if (plan.est_selectivity >= 0) {
      out += StrPrintf(" selectivity=%.4f", plan.est_selectivity);
      if (!plan.est_provenance.empty()) {
        out += " (" + plan.est_provenance + ")";
      }
    }
    if (plan.est_bytes >= 0) {
      out += StrPrintf(
          " bytes=%s",
          HumanBytes(static_cast<uint64_t>(plan.est_bytes)).c_str());
    }
    if (plan.baseline_bytes >= 0) {
      out += StrPrintf(" baseline=%s",
                       HumanBytes(static_cast<uint64_t>(
                                      plan.baseline_bytes))
                           .c_str());
    }
    out += "\n";
  }
  out += StrPrintf("candidates (%zu):\n", plan.candidates.size());
  for (const CandidateExplain& c : plan.candidates) {
    out += StrPrintf("  [%-11s] %s", c.verdict.c_str(),
                     c.describe.c_str());
    if (c.est_bytes >= 0) {
      out += StrPrintf(
          " — est %s, sel %s",
          HumanBytes(static_cast<uint64_t>(c.est_bytes)).c_str(),
          FmtSel(c.est_selectivity).c_str());
      if (!c.provenance.empty()) out += " [" + c.provenance + "]";
    }
    if (!c.reason.empty()) out += " (" + c.reason + ")";
    out += "\n";
  }
  if (!analyzed) return out;

  out += StrPrintf(
      "analyze (%s):\n  rows: scanned=%llu emitted=%llu "
      "observed_selectivity=%s\n",
      job_id.c_str(), static_cast<unsigned long long>(rows_scanned),
      static_cast<unsigned long long>(rows_emitted),
      FmtSel(observed_selectivity).c_str());
  if (!backend.empty()) {
    out += "  backend: " + backend;
    if (!backend_detail.empty()) out += " (" + backend_detail + ")";
    out += StrPrintf(" native_tasks=%llu bailout_records=%llu",
                     static_cast<unsigned long long>(
                         counters.native_tasks),
                     static_cast<unsigned long long>(
                         counters.native_bailout_records));
    out += "\n";
  }
  out += StrPrintf("  time: wall=%.3fs reported=%.3fs\n", wall_seconds,
                   reported_seconds);
  if (!phases.empty()) {
    out += "  phases:";
    for (const auto& [name, stat] : phases) {
      out += StrPrintf(" %s=%.3fs/%s", name.c_str(), stat.seconds,
                       HumanBytes(stat.bytes).c_str());
    }
    out += "\n";
  }
  out += StrPrintf(
      "  counters: input_records=%llu input_bytes=%llu "
      "map_output_records=%llu spilled_runs=%llu retries=%llu "
      "speculative=%llu\n",
      static_cast<unsigned long long>(counters.input_records),
      static_cast<unsigned long long>(counters.input_bytes),
      static_cast<unsigned long long>(counters.map_output_records),
      static_cast<unsigned long long>(counters.shuffle_spilled_runs),
      static_cast<unsigned long long>(counters.task_retries),
      static_cast<unsigned long long>(counters.speculative_launches));
  if (counters.bytes_decoded != counters.input_bytes ||
      counters.blocks_skipped > 0) {
    out += StrPrintf(
        "  direct: bytes_decoded=%llu blocks_skipped=%llu\n",
        static_cast<unsigned long long>(counters.bytes_decoded),
        static_cast<unsigned long long>(counters.blocks_skipped));
  }
  if (!tasks.empty()) {
    out += StrPrintf("  tasks (%zu committed attempts):\n",
                     tasks.size());
    for (const exec::TaskStat& t : tasks) {
      out += StrPrintf(
          "    %c%04d chain=%d attempt=%d: in=%llu out=%llu "
          "read=%llu written=%llu vm=%llu %.3fs\n",
          t.kind, t.index, t.chain, t.attempt,
          static_cast<unsigned long long>(t.records_in),
          static_cast<unsigned long long>(t.records_out),
          static_cast<unsigned long long>(t.bytes_read),
          static_cast<unsigned long long>(t.bytes_written),
          static_cast<unsigned long long>(t.vm_instructions), t.seconds);
    }
  }
  if (replan.switched) {
    out += StrPrintf(
        "  replan: switched to %s after %d splits (est=%s obs=%s "
        "drift=%.1fx)\n",
        replan.to.c_str(), replan.after_splits,
        FmtSel(replan.estimated).c_str(),
        FmtSel(replan.observed).c_str(), replan.drift_ratio);
  }
  if (!drift.empty()) {
    out += "  drift (estimated vs observed selectivity";
    if (predicates_observed && plan.access_path != "seqscan") {
      out += "; indexed scan pre-filters rows, so observed ~ index "
             "precision";
    }
    out += "):\n";
    for (const DriftRow& row : drift) {
      out += StrPrintf("    %s: est=%s obs=%s", row.predicate.c_str(),
                       FmtSel(row.estimated).c_str(),
                       FmtSel(row.observed).c_str());
      if (row.estimated >= 0 && row.observed >= 0) {
        out += StrPrintf(" delta=%+.4f", row.observed - row.estimated);
      }
      out += "\n";
    }
  }
  return out;
}

std::string ExplainReport::ToJson() const {
  std::string out = "{\"explain_version\":";
  out += std::to_string(kExplainSchemaVersion);
  out += ",\"analyzed\":";
  out += analyzed ? "true" : "false";
  if (!job_id.empty()) out += ",\"job\":" + JsonQuote(job_id);

  out += ",\"plan\":{";
  out += "\"program\":" + JsonQuote(plan.program);
  out += ",\"input\":" + JsonQuote(plan.input_path);
  out += ",\"mode\":" + JsonQuote(plan.mode);
  out += ",\"summary\":" + JsonQuote(plan.summary);
  out += ",\"access_path\":" + JsonQuote(plan.access_path);
  out += ",\"optimized\":";
  out += plan.optimized ? "true" : "false";
  out += ",\"applied\":[";
  for (size_t i = 0; i < plan.applied.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(plan.applied[i]);
  }
  out += "]";
  if (!plan.predicate.empty()) {
    out += ",\"predicate\":" + JsonQuote(plan.predicate);
  }
  AppendOptionalNum(&out, "est_selectivity", plan.est_selectivity,
                    /*fixed4=*/true);
  if (!plan.est_provenance.empty()) {
    out += ",\"est_provenance\":" + JsonQuote(plan.est_provenance);
  }
  AppendOptionalNum(&out, "est_bytes", plan.est_bytes);
  AppendOptionalNum(&out, "baseline_bytes", plan.baseline_bytes);
  out += ",\"native_eligible\":";
  out += plan.native_eligible ? "true" : "false";
  if (!plan.native_detail.empty()) {
    out += ",\"native_detail\":" + JsonQuote(plan.native_detail);
  }
  out += ",\"candidates\":[";
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const CandidateExplain& c = plan.candidates[i];
    if (i > 0) out += ",";
    out += "{\"candidate\":" + JsonQuote(c.describe);
    out += ",\"signature\":" + JsonQuote(c.signature);
    out += ",\"verdict\":" + JsonQuote(c.verdict);
    if (!c.reason.empty()) out += ",\"reason\":" + JsonQuote(c.reason);
    out += ",\"cataloged\":";
    out += c.cataloged ? "true" : "false";
    if (!c.artifact_path.empty()) {
      out += ",\"artifact\":" + JsonQuote(c.artifact_path);
    }
    AppendOptionalNum(&out, "est_bytes", c.est_bytes);
    AppendOptionalNum(&out, "est_selectivity", c.est_selectivity,
                      /*fixed4=*/true);
    if (!c.provenance.empty()) {
      out += ",\"provenance\":" + JsonQuote(c.provenance);
    }
    if (!c.cost_detail.empty()) {
      out += ",\"cost_detail\":" + JsonQuote(c.cost_detail);
    }
    if (!c.interval_selectivity.empty()) {
      out += ",\"intervals\":[";
      for (size_t j = 0; j < c.interval_selectivity.size(); ++j) {
        if (j > 0) out += ",";
        out += "{\"interval\":" +
               JsonQuote(c.interval_selectivity[j].first);
        out += ",\"est_selectivity\":" +
               JsonFixed(c.interval_selectivity[j].second, 4) + "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";

  if (analyzed) {
    out += ",\"exec\":{";
    out += "\"rows_scanned\":" + std::to_string(rows_scanned);
    out += ",\"rows_emitted\":" + std::to_string(rows_emitted);
    AppendOptionalNum(&out, "observed_selectivity",
                      observed_selectivity, /*fixed4=*/true);
    out += ",\"predicates_observed\":";
    out += predicates_observed ? "true" : "false";
    if (!backend.empty()) {
      out += ",\"backend\":" + JsonQuote(backend);
      if (!backend_detail.empty()) {
        out += ",\"backend_detail\":" + JsonQuote(backend_detail);
      }
    }
    out += ",\"wall_seconds\":" + JsonNumber(wall_seconds);
    out += ",\"reported_seconds\":" + JsonNumber(reported_seconds);
    out += ",\"phases\":{";
    for (size_t i = 0; i < phases.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonQuote(phases[i].first) +
             ":{\"seconds\":" + JsonNumber(phases[i].second.seconds) +
             ",\"bytes\":" + std::to_string(phases[i].second.bytes) +
             "}";
    }
    out += "},\"counters\":{";
    out += "\"input_records\":" +
           std::to_string(counters.input_records);
    out += ",\"input_bytes\":" + std::to_string(counters.input_bytes);
    out += ",\"map_output_records\":" +
           std::to_string(counters.map_output_records);
    out += ",\"map_output_filtered\":" +
           std::to_string(counters.map_output_filtered);
    out += ",\"output_records\":" +
           std::to_string(counters.output_records);
    out += ",\"shuffle_spilled_runs\":" +
           std::to_string(counters.shuffle_spilled_runs);
    out += ",\"task_retries\":" + std::to_string(counters.task_retries);
    out += ",\"speculative_launches\":" +
           std::to_string(counters.speculative_launches);
    out += ",\"native_tasks\":" + std::to_string(counters.native_tasks);
    out += ",\"native_bailout_records\":" +
           std::to_string(counters.native_bailout_records);
    out += ",\"bytes_decoded\":" + std::to_string(counters.bytes_decoded);
    out += ",\"blocks_skipped\":" +
           std::to_string(counters.blocks_skipped);
    out += "},\"tasks\":[";
    for (size_t i = 0; i < tasks.size(); ++i) {
      const exec::TaskStat& t = tasks[i];
      if (i > 0) out += ",";
      out += "{\"task\":" +
             JsonQuote(StrPrintf("%c%04d", t.kind, t.index));
      out += ",\"chain\":" + std::to_string(t.chain);
      out += ",\"attempt\":" + std::to_string(t.attempt);
      out += ",\"records_in\":" + std::to_string(t.records_in);
      out += ",\"records_out\":" + std::to_string(t.records_out);
      out += ",\"bytes_read\":" + std::to_string(t.bytes_read);
      out += ",\"bytes_written\":" + std::to_string(t.bytes_written);
      out += ",\"vm_instructions\":" +
             std::to_string(t.vm_instructions);
      out += ",\"seconds\":" + JsonNumber(t.seconds) + "}";
    }
    out += "]}";
    out += ",\"drift\":[";
    for (size_t i = 0; i < drift.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"predicate\":" + JsonQuote(drift[i].predicate);
      AppendOptionalNum(&out, "estimated", drift[i].estimated,
                        /*fixed4=*/true);
      AppendOptionalNum(&out, "observed", drift[i].observed,
                        /*fixed4=*/true);
      out += "}";
    }
    out += "]";
    if (replan.switched) {
      out += ",\"replan\":{\"switched\":true";
      out += ",\"after_splits\":" + std::to_string(replan.after_splits);
      AppendOptionalNum(&out, "estimated", replan.estimated,
                        /*fixed4=*/true);
      AppendOptionalNum(&out, "observed", replan.observed,
                        /*fixed4=*/true);
      out += ",\"drift_ratio\":" + JsonNumber(replan.drift_ratio);
      out += ",\"to\":" + JsonQuote(replan.to) + "}";
    }
  }
  out += "}";
  return out;
}

}  // namespace manimal::optimizer
