// The Manimal optimizer (paper §2.2 Step 2): "examines the
// descriptors, the user's input file, and the catalog to choose the
// most efficient execution plan currently possible."
//
// Two planning modes:
//
// RULE-BASED (default, the paper's): the index exploiting the most
// optimizations wins; selection is favored over delta-compression when
// both could apply (footnote 3); among remaining candidates the
// hard-coded ranking is selection > projection > column-groups >
// delta-compression > direct-operation.
//
// COST-BASED (the approach the paper defers to future work): every
// cataloged candidate is priced in estimated bytes moved — B+Tree
// selectivity read off the tree's own root fan-out — and the cheapest
// plan wins, INCLUDING the plain scan when no artifact beats it (an
// index at 60% selectivity can easily cost more than scanning).

#ifndef MANIMAL_OPTIMIZER_OPTIMIZER_H_
#define MANIMAL_OPTIMIZER_OPTIMIZER_H_

#include <string>

#include "analyzer/analyzer.h"
#include "common/status.h"
#include "exec/descriptor.h"
#include "index/catalog.h"
#include "optimizer/explain.h"

namespace manimal::optimizer {

struct Plan {
  exec::ExecutionDescriptor descriptor;
  // Why this plan was chosen (or why the baseline fell out).
  std::string explanation;
  // True when an indexed artifact is in use.
  bool optimized = false;
  // The full candidate set and estimates behind this choice —
  // everything EXPLAIN renders (explain.h). Always populated by
  // BuildPlan; rendering it is the caller's opt-in.
  PlanExplain explain;
};

// The unoptimized plan: full scan of the raw input with the unmodified
// program (what conventional Hadoop would do).
exec::ExecutionDescriptor BaselineDescriptor(const mril::Program& program,
                                             const std::string& input_path);

struct PlanningOptions {
  // When true, price every cataloged candidate (and the baseline scan)
  // in estimated bytes moved and pick the cheapest.
  bool cost_based = false;
  // Ground-truth predicate selectivity observed by a running job's
  // first committed splits. Set when re-entering BuildPlan for
  // adaptive mid-job replanning: it overrides every model estimate
  // (provenance "observed") so the cost comparison re-runs against
  // reality.
  std::optional<double> observed_selectivity;
};

// Chooses the best available plan given the analysis and catalog.
// Falls back to the baseline when no usable artifact exists.
Result<Plan> BuildPlan(const mril::Program& program,
                       const std::string& input_path,
                       const analyzer::AnalysisReport& report,
                       const index::Catalog& catalog,
                       const PlanningOptions& options);
Result<Plan> BuildPlan(const mril::Program& program,
                       const std::string& input_path,
                       const analyzer::AnalysisReport& report,
                       const index::Catalog& catalog);

}  // namespace manimal::optimizer

#endif  // MANIMAL_OPTIMIZER_OPTIMIZER_H_
