#include "optimizer/optimizer.h"

#include <algorithm>

#include "columnar/dictionary.h"
#include "common/env.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/cost.h"

namespace manimal::optimizer {

using analyzer::IndexGenProgram;
using exec::AccessPath;
using exec::ExecutionDescriptor;

exec::ExecutionDescriptor BaselineDescriptor(
    const mril::Program& program, const std::string& input_path) {
  ExecutionDescriptor d;
  d.access_path = AccessPath::kSeqScan;
  d.data_path = input_path;
  d.program = program;
  return d;
}

namespace {

// Builds the original-field -> runtime-slot remap for a projected
// artifact; empty when the mapping is the identity.
std::vector<int> MakeFieldRemap(const mril::Program& program,
                                const IndexGenProgram& spec) {
  if (!spec.projection || program.value_schema.opaque()) return {};
  std::vector<int> remap(program.value_schema.num_fields(), -1);
  bool identity =
      static_cast<int>(spec.kept_fields.size()) == program.value_schema.num_fields();
  for (size_t slot = 0; slot < spec.kept_fields.size(); ++slot) {
    remap[spec.kept_fields[slot]] = static_cast<int>(slot);
    if (spec.kept_fields[slot] != static_cast<int>(slot)) {
      identity = false;
    }
  }
  if (identity) return {};
  return remap;
}

// Applies direct-operation constant patches to a copy of the program:
// string constants compared against dictionary-compressed fields
// become their codes (or a sentinel no-match code when the string
// never occurs in the data).
Status PatchProgramForDictionary(
    const analyzer::AnalysisReport& report,
    const columnar::Dictionary& dict, mril::Program* program) {
  if (!report.direct_op.has_value()) return Status::OK();
  for (const auto& patch : report.direct_op->const_patches) {
    if (patch.load_const_pc < 0 ||
        patch.load_const_pc >=
            static_cast<int>(program->map_fn.code.size())) {
      return Status::Internal("const patch pc out of range");
    }
    mril::Instruction& inst = program->map_fn.code[patch.load_const_pc];
    if (inst.op != mril::Opcode::kLoadConst) {
      return Status::Internal("const patch target is not load_const");
    }
    const Value& original = program->constants.at(inst.operand);
    if (!original.is_str()) {
      return Status::Internal("const patch target is not a string");
    }
    std::optional<int64_t> code = dict.Encode(original.str());
    // A string absent from the dictionary can never equal any field
    // value; -1 is never a valid code.
    int64_t replacement = code.has_value() ? *code : -1;
    inst.operand = program->AddConstant(Value::I64(replacement));
  }
  return Status::OK();
}

}  // namespace

namespace {

// The Appendix E reduce-side key filter needs no artifact; it rides on
// whatever plan is chosen.
void AttachReduceFilter(const analyzer::AnalysisReport& report,
                        Plan* plan) {
  if (!report.reduce_filter.has_value()) return;
  plan->descriptor.reduce_key_filter = report.reduce_filter;
  plan->descriptor.applied.push_back(
      "reduce-key-filter(" +
      report.reduce_filter->required.ToString() + ")");
  plan->optimized = true;
}

}  // namespace

Result<Plan> BuildPlan(const mril::Program& program,
                       const std::string& input_path,
                       const analyzer::AnalysisReport& report,
                       const index::Catalog& catalog) {
  return BuildPlan(program, input_path, report, catalog,
                   PlanningOptions{});
}

namespace {

// Materializes the execution plan for one cataloged candidate.
Result<Plan> MakePlanForSpec(const mril::Program& program,
                             const IndexGenProgram& spec,
                             const index::CatalogEntry& entry,
                             const analyzer::AnalysisReport& report) {
  Plan plan;
  {
    plan.optimized = true;
    ExecutionDescriptor& d = plan.descriptor;
    d.program = program;
    d.data_path = entry.artifact_path;
    d.field_remap = MakeFieldRemap(program, spec);

    if (spec.column_groups) {
      d.access_path = AccessPath::kColumnGroups;
      // Open only the groups covering the program's live fields.
      if (report.projection.has_value()) {
        d.needed_fields = report.projection->used_fields;
      }
      d.applied.push_back(StrPrintf(
          "column-groups(%zu of %d fields read)",
          report.projection.has_value()
              ? report.projection->used_fields.size()
              : static_cast<size_t>(program.value_schema.num_fields()),
          program.value_schema.num_fields()));
    } else if (spec.btree) {
      d.access_path = AccessPath::kBTree;
      d.base_path = entry.base_path;
      d.clustered = spec.clustered;
      if (spec.clustered) {
        // Layout of the embedded records.
        columnar::SeqFileMeta meta;
        meta.original_schema = program.value_schema;
        if (spec.projection && !program.value_schema.opaque()) {
          meta.stored_schema =
              program.value_schema.Project(spec.kept_fields);
          meta.field_map = spec.kept_fields;
        } else {
          meta.stored_schema = program.value_schema;
          if (program.value_schema.opaque()) {
            meta.field_map = {0};
          } else {
            for (int i = 0; i < program.value_schema.num_fields(); ++i) {
              meta.field_map.push_back(i);
            }
          }
        }
        d.artifact_meta = std::move(meta);
      }
      d.intervals = report.selection->intervals;
      d.applied.push_back(std::string(spec.clustered ? "clustered " : "") +
                          "selection(B+Tree on " +
                          spec.key_expr->ToString() + ")");
    } else {
      d.access_path = AccessPath::kSeqScan;
    }
    if (spec.projection) {
      d.applied.push_back(StrPrintf(
          "projection(%zu of %d fields)", spec.kept_fields.size(),
          program.value_schema.num_fields()));
    }
    if (spec.delta) {
      d.applied.push_back(StrPrintf("delta-compression(%zu fields)",
                                    spec.delta_fields.size()));
    }
    if (spec.dictionary) {
      MANIMAL_ASSIGN_OR_RETURN(columnar::Dictionary dict,
                               columnar::Dictionary::Load(entry.dict_path));
      MANIMAL_RETURN_IF_ERROR(
          PatchProgramForDictionary(report, dict, &d.program));
      d.applied.push_back(StrPrintf("direct-operation(%zu fields)",
                                    spec.dict_fields.size()));
    }
  }
  plan.explanation = "using catalog artifact " + entry.artifact_path +
                     " (" + spec.Describe() + ")";
  AttachReduceFilter(report, &plan);
  return plan;
}

}  // namespace

Result<Plan> BuildPlan(const mril::Program& program,
                       const std::string& input_path,
                       const analyzer::AnalysisReport& report,
                       const index::Catalog& catalog,
                       const PlanningOptions& options) {
  obs::ScopedSpan plan_span("optimizer.build_plan", "optimizer");
  plan_span.AddArg("program", program.name);
  plan_span.AddArg("mode", options.cost_based ? "cost" : "rule");
  obs::MetricsRegistry::Get().GetCounter("optimizer.plans")
      ->Increment();
  // Candidates come pre-ranked for the rule-based mode: the maximal
  // combination first, then selection, projection, column groups,
  // delta, direct-op.
  std::vector<IndexGenProgram> candidates =
      analyzer::SynthesizeIndexPrograms(program, report);

  std::vector<std::pair<const IndexGenProgram*, index::CatalogEntry>>
      available;
  for (const IndexGenProgram& spec : candidates) {
    std::optional<index::CatalogEntry> entry =
        catalog.Find(input_path, spec.Signature());
    if (entry.has_value()) {
      available.emplace_back(&spec, std::move(*entry));
    }
  }
  plan_span.AddArg("candidates", std::to_string(candidates.size()));
  plan_span.AddArg("cataloged", std::to_string(available.size()));

  if (!options.cost_based) {
    if (!available.empty()) {
      // Rule-based: the pre-ranked head wins; the rest are rejected by
      // rank, but price them anyway so the trace shows the estimated
      // cost of every candidate not taken.
      for (size_t i = 1; i < available.size(); ++i) {
        const auto& [spec, entry] = available[i];
        auto cost_or = EstimateArtifactCost(*spec, entry, report);
        obs::TraceInstant(
            "optimizer.candidate_rejected", "optimizer",
            {{"candidate", spec->Describe()},
             {"reason", "rule-based rank"},
             {"est_bytes", cost_or.ok()
                               ? StrPrintf("%.0f", cost_or->bytes)
                               : std::string("unpriceable")}});
        obs::MetricsRegistry::Get()
            .GetCounter("optimizer.candidates_rejected")
            ->Increment();
      }
      return MakePlanForSpec(program, *available[0].first,
                             available[0].second, report);
    }
  } else {
    // Price everything, including the plain scan.
    MANIMAL_ASSIGN_OR_RETURN(uint64_t input_bytes,
                             GetFileSize(input_path));
    CandidateCost best = BaselineCost(input_bytes);
    const IndexGenProgram* chosen_spec = nullptr;
    const index::CatalogEntry* chosen_entry = nullptr;
    for (const auto& [spec, entry] : available) {
      auto cost_or = EstimateArtifactCost(*spec, entry, report);
      if (!cost_or.ok()) {
        // Unpriceable: skip, stay safe.
        obs::TraceInstant("optimizer.candidate_rejected", "optimizer",
                          {{"candidate", spec->Describe()},
                           {"reason", "unpriceable"}});
        obs::MetricsRegistry::Get()
            .GetCounter("optimizer.candidates_rejected")
            ->Increment();
        continue;
      }
      obs::TraceInstant(
          "optimizer.candidate_priced", "optimizer",
          {{"candidate", spec->Describe()},
           {"est_bytes", StrPrintf("%.0f", cost_or->bytes)},
           {"selectivity", StrPrintf("%.4f", cost_or->selectivity)}});
      if (cost_or->bytes < best.bytes) {
        best = *cost_or;
        chosen_spec = spec;
        chosen_entry = &entry;
      } else {
        obs::TraceInstant(
            "optimizer.candidate_rejected", "optimizer",
            {{"candidate", spec->Describe()},
             {"reason", "costlier than best"},
             {"est_bytes", StrPrintf("%.0f", cost_or->bytes)}});
        obs::MetricsRegistry::Get()
            .GetCounter("optimizer.candidates_rejected")
            ->Increment();
      }
    }
    if (chosen_spec != nullptr) {
      MANIMAL_ASSIGN_OR_RETURN(
          Plan plan,
          MakePlanForSpec(program, *chosen_spec, *chosen_entry, report));
      plan.explanation += StrPrintf("; cost-based choice: %s (~%s)",
                                    best.detail.c_str(),
                                    HumanBytes(static_cast<uint64_t>(
                                                   best.bytes))
                                        .c_str());
      return plan;
    }
    if (!available.empty()) {
      // Artifacts exist but none beats the scan.
      Plan plan;
      plan.descriptor = BaselineDescriptor(program, input_path);
      plan.explanation = StrPrintf(
          "cost-based: no cataloged artifact beats the full scan "
          "(~%s); running conventionally",
          HumanBytes(input_bytes).c_str());
      AttachReduceFilter(report, &plan);
      return plan;
    }
  }

  Plan plan;
  plan.descriptor = BaselineDescriptor(program, input_path);
  plan.explanation =
      candidates.empty()
          ? "no optimizations detected; running conventionally"
          : "no matching index artifact in catalog; running "
            "conventionally (index-generation program available)";
  AttachReduceFilter(report, &plan);
  if (plan.optimized) {
    plan.explanation += "; pre-shuffle reduce-key filtering in effect";
  }
  return plan;
}

}  // namespace manimal::optimizer
