#include "optimizer/optimizer.h"

#include <algorithm>

#include "analyzer/select.h"
#include "codegen/shape.h"
#include "columnar/dictionary.h"
#include "common/env.h"
#include "common/strings.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/cost.h"
#include "stats/stats.h"

namespace manimal::optimizer {

using analyzer::IndexGenProgram;
using exec::AccessPath;
using exec::ExecutionDescriptor;

exec::ExecutionDescriptor BaselineDescriptor(
    const mril::Program& program, const std::string& input_path) {
  ExecutionDescriptor d;
  d.access_path = AccessPath::kSeqScan;
  d.data_path = input_path;
  d.program = program;
  return d;
}

namespace {

// Builds the original-field -> runtime-slot remap for a projected
// artifact; empty when the mapping is the identity.
std::vector<int> MakeFieldRemap(const mril::Program& program,
                                const IndexGenProgram& spec) {
  if (!spec.projection || program.value_schema.opaque()) return {};
  std::vector<int> remap(program.value_schema.num_fields(), -1);
  bool identity =
      static_cast<int>(spec.kept_fields.size()) == program.value_schema.num_fields();
  for (size_t slot = 0; slot < spec.kept_fields.size(); ++slot) {
    remap[spec.kept_fields[slot]] = static_cast<int>(slot);
    if (spec.kept_fields[slot] != static_cast<int>(slot)) {
      identity = false;
    }
  }
  if (identity) return {};
  return remap;
}

// Applies direct-operation constant patches to a copy of the program:
// string constants compared against dictionary-compressed fields
// become their codes (or a sentinel no-match code when the string
// never occurs in the data).
Status PatchProgramForDictionary(
    const analyzer::AnalysisReport& report,
    const columnar::Dictionary& dict, mril::Program* program) {
  if (!report.direct_op.has_value()) return Status::OK();
  for (const auto& patch : report.direct_op->const_patches) {
    if (patch.load_const_pc < 0 ||
        patch.load_const_pc >=
            static_cast<int>(program->map_fn.code.size())) {
      return Status::Internal("const patch pc out of range");
    }
    mril::Instruction& inst = program->map_fn.code[patch.load_const_pc];
    if (inst.op != mril::Opcode::kLoadConst) {
      return Status::Internal("const patch target is not load_const");
    }
    const Value& original = program->constants.at(inst.operand);
    if (!original.is_str()) {
      return Status::Internal("const patch target is not a string");
    }
    std::optional<int64_t> code = dict.Encode(original.str());
    // A string absent from the dictionary can never equal any field
    // value; -1 is never a valid code.
    int64_t replacement = code.has_value() ? *code : -1;
    inst.operand = program->AddConstant(Value::I64(replacement));
  }
  return Status::OK();
}

}  // namespace

namespace {

// The Appendix E reduce-side key filter needs no artifact; it rides on
// whatever plan is chosen.
void AttachReduceFilter(const analyzer::AnalysisReport& report,
                        Plan* plan) {
  if (!report.reduce_filter.has_value()) return;
  plan->descriptor.reduce_key_filter = report.reduce_filter;
  plan->descriptor.applied.push_back(
      "reduce-key-filter(" +
      report.reduce_filter->required.ToString() + ")");
  plan->optimized = true;
}

}  // namespace

Result<Plan> BuildPlan(const mril::Program& program,
                       const std::string& input_path,
                       const analyzer::AnalysisReport& report,
                       const index::Catalog& catalog) {
  return BuildPlan(program, input_path, report, catalog,
                   PlanningOptions{});
}

namespace {

// Materializes the execution plan for one cataloged candidate.
Result<Plan> MakePlanForSpec(const mril::Program& program,
                             const IndexGenProgram& spec,
                             const index::CatalogEntry& entry,
                             const analyzer::AnalysisReport& report) {
  Plan plan;
  {
    plan.optimized = true;
    ExecutionDescriptor& d = plan.descriptor;
    d.program = program;
    d.data_path = entry.artifact_path;
    d.field_remap = MakeFieldRemap(program, spec);

    if (spec.column_groups) {
      d.access_path = AccessPath::kColumnGroups;
      // Open only the groups covering the program's live fields.
      if (report.projection.has_value()) {
        d.needed_fields = report.projection->used_fields;
      }
      d.applied.push_back(StrPrintf(
          "column-groups(%zu of %d fields read)",
          report.projection.has_value()
              ? report.projection->used_fields.size()
              : static_cast<size_t>(program.value_schema.num_fields()),
          program.value_schema.num_fields()));
    } else if (spec.btree) {
      d.access_path = AccessPath::kBTree;
      d.base_path = entry.base_path;
      d.clustered = spec.clustered;
      if (spec.clustered) {
        // Layout of the embedded records.
        columnar::SeqFileMeta meta;
        meta.original_schema = program.value_schema;
        if (spec.projection && !program.value_schema.opaque()) {
          meta.stored_schema =
              program.value_schema.Project(spec.kept_fields);
          meta.field_map = spec.kept_fields;
        } else {
          meta.stored_schema = program.value_schema;
          if (program.value_schema.opaque()) {
            meta.field_map = {0};
          } else {
            for (int i = 0; i < program.value_schema.num_fields(); ++i) {
              meta.field_map.push_back(i);
            }
          }
        }
        d.artifact_meta = std::move(meta);
      }
      // Canonicalized (sorted, merged) so overlapping DNF intervals
      // can never collect the same locator twice.
      d.intervals = CanonicalizeIntervals(report.selection->intervals);
      d.applied.push_back(std::string(spec.clustered ? "clustered " : "") +
                          "selection(B+Tree on " +
                          spec.key_expr->ToString() + ")");
    } else {
      d.access_path = AccessPath::kSeqScan;
    }
    if (spec.projection) {
      d.applied.push_back(StrPrintf(
          "projection(%zu of %d fields)", spec.kept_fields.size(),
          program.value_schema.num_fields()));
    }
    if (spec.delta) {
      d.applied.push_back(StrPrintf("delta-compression(%zu fields)",
                                    spec.delta_fields.size()));
    }
    if (spec.dictionary) {
      MANIMAL_ASSIGN_OR_RETURN(columnar::Dictionary dict,
                               columnar::Dictionary::Load(entry.dict_path));
      MANIMAL_RETURN_IF_ERROR(
          PatchProgramForDictionary(report, dict, &d.program));
      d.applied.push_back(StrPrintf("direct-operation(%zu fields)",
                                    spec.dict_fields.size()));
    }
    // Re-encoded artifacts may be block-compressed (v2): surface the
    // chain so EXPLAIN shows what the scan will decode through.
    if (!entry.codec_chain.empty()) {
      d.applied.push_back("codec(" + entry.codec_chain + ")");
    }
  }
  plan.explanation = "using catalog artifact " + entry.artifact_path +
                     " (" + spec.Describe() + ")";
  AttachReduceFilter(report, &plan);
  return plan;
}

}  // namespace

namespace {

// Probes the native codegen tier's admission gate against the chosen
// plan's (possibly constant-patched) program and runtime field
// layout, and — when admitted and statistics exist — derives a
// per-term selectivity estimate so the kernel can short-circuit
// conjunct terms most-selective-first.
void AttachNativeEligibility(Plan* plan, PlanExplain* ex,
                             const stats::TableStats* stats) {
  exec::ExecutionDescriptor& d = plan->descriptor;
  Result<codegen::RelationalShape> shape =
      codegen::ExtractShape(d.program);
  if (!shape.ok()) {
    d.native_eligible = false;
    d.native_detail = shape.status().message();
  } else {
    d.native_eligible = true;
    d.native_detail = shape->Describe();
    if (stats != nullptr) {
      for (const analyzer::Conjunct& c : shape->formula.disjuncts) {
        for (const analyzer::SelectTerm& t : c.terms) {
          // Price each term alone: its own index ranges against the
          // column statistics, the same estimator the cost model
          // uses for whole predicates.
          analyzer::DnfFormula one;
          one.disjuncts.push_back(analyzer::Conjunct{{t}});
          analysis::ExprRef indexed;
          std::vector<analyzer::KeyInterval> intervals;
          if (!analyzer::DeriveIndexRanges(d.program, one, &indexed,
                                           &intervals)) {
            continue;
          }
          const stats::ColumnStats* column =
              stats->Find("expr:" + indexed->ToString());
          if (column == nullptr &&
              indexed->kind == analysis::Expr::Kind::kField &&
              indexed->index >= 0 && !indexed->args.empty() &&
              indexed->args[0] != nullptr &&
              indexed->args[0]->kind == analysis::Expr::Kind::kParam &&
              indexed->args[0]->index == 1) {
            column =
                stats->Find("field:" + std::to_string(indexed->index));
          }
          if (column == nullptr) continue;
          std::vector<std::pair<std::string, double>> per_interval;
          std::string provenance;
          Result<double> fraction = EstimateSelectivity(
              /*tree=*/nullptr, column, intervals, &per_interval,
              &provenance);
          if (fraction.ok()) {
            d.native_term_selectivity.emplace_back(t.ToString(),
                                                   *fraction);
          }
        }
      }
    }
  }
  ex->native_eligible = d.native_eligible;
  ex->native_detail = d.native_detail;
}

// Completes the plan with its EXPLAIN payload and the EXPLAIN ANALYZE
// observation hooks, and journals the selection. Every BuildPlan exit
// path funnels through here.
Plan FinalizePlan(Plan plan, PlanExplain ex,
                  const analyzer::AnalysisReport& report,
                  const stats::TableStats* stats = nullptr) {
  ex.summary = plan.explanation;
  ex.access_path = exec::AccessPathName(plan.descriptor.access_path);
  ex.applied = plan.descriptor.applied;
  ex.optimized = plan.optimized;
  // Observation hooks ride on EVERY plan with an indexable selection
  // (including the plain scan, whose descriptor.intervals stay empty):
  // the fabric only uses them under collect_task_stats or when
  // adaptive replanning is armed. Canonicalized so the observed
  // per-interval keys join against the canonicalized estimates.
  if (report.selection.has_value() && report.selection->indexable()) {
    plan.descriptor.observe_expr = report.selection->indexed_expr;
    plan.descriptor.observe_intervals =
        CanonicalizeIntervals(report.selection->intervals);
  }
  // The replanning gate needs the plan's own estimate of the PREDICATE
  // selectivity (not the bytes fraction): prefer the chosen
  // candidate's interval-backed estimate, else the first priced one —
  // the same preference order the drift report uses.
  const CandidateExplain* estimate = nullptr;
  for (const CandidateExplain& ce : ex.candidates) {
    if (ce.chosen && !ce.interval_selectivity.empty()) {
      estimate = &ce;
      break;
    }
  }
  if (estimate == nullptr) {
    for (const CandidateExplain& ce : ex.candidates) {
      if (ce.cataloged && ce.est_selectivity >= 0 &&
          !ce.interval_selectivity.empty()) {
        estimate = &ce;
        break;
      }
    }
  }
  if (estimate != nullptr) {
    plan.descriptor.est_predicate_selectivity = estimate->est_selectivity;
    plan.descriptor.est_provenance = estimate->provenance;
  }
  AttachNativeEligibility(&plan, &ex, stats);
  obs::Journal::Get()
      .Event("plan_selected")
      .Str("program", ex.program)
      .Str("input", ex.input_path)
      .Str("mode", ex.mode)
      .Str("access_path", ex.access_path)
      .Bool("optimized", ex.optimized)
      .Uint("candidates", ex.candidates.size())
      .Str("summary", ex.summary)
      .Emit();
  plan.explain = std::move(ex);
  return plan;
}

}  // namespace

Result<Plan> BuildPlan(const mril::Program& program,
                       const std::string& input_path,
                       const analyzer::AnalysisReport& report,
                       const index::Catalog& catalog,
                       const PlanningOptions& options) {
  obs::ScopedSpan plan_span("optimizer.build_plan", "optimizer");
  plan_span.AddArg("program", program.name);
  plan_span.AddArg("mode", options.cost_based ? "cost" : "rule");
  obs::MetricsRegistry::Get().GetCounter("optimizer.plans")
      ->Increment();
  // Candidates come pre-ranked for the rule-based mode: the maximal
  // combination first, then selection, projection, column groups,
  // delta, direct-op.
  std::vector<IndexGenProgram> candidates =
      analyzer::SynthesizeIndexPrograms(program, report);

  PlanExplain ex;
  ex.program = program.name;
  ex.input_path = input_path;
  ex.mode = options.cost_based ? "cost" : "rule";
  if (report.selection.has_value()) {
    ex.predicate = report.selection->formula.ToString();
  }
  Result<uint64_t> input_bytes_or = GetFileSize(input_path);
  if (input_bytes_or.ok()) {
    ex.baseline_bytes = static_cast<double>(*input_bytes_or);
  }

  // Catalog lookup + pricing for every candidate. Pricing touches
  // artifact metadata only (footers/manifests, O(1) I/O per
  // candidate), so both modes can afford to price everything — the
  // estimates feed EXPLAIN and the rejected-candidate trace.
  struct Avail {
    size_t idx;  // into candidates / ex.candidates
    index::CatalogEntry entry;
    std::optional<CandidateCost> cost;
  };
  std::vector<Avail> available;
  ex.candidates.resize(candidates.size());

  // Column statistics: any artifact build for this input may have left
  // a stats sidecar; the first loadable one prices every candidate.
  // Missing or unreadable stats just fall back to the tree-fanout
  // heuristic.
  stats::TableStats table_stats;
  CostContext cost_context;
  cost_context.observed_selectivity = options.observed_selectivity;
  for (const index::CatalogEntry& e : catalog.FindForInput(input_path)) {
    if (e.stats_path.empty()) continue;
    Result<stats::TableStats> loaded =
        stats::TableStats::Load(e.stats_path);
    if (loaded.ok()) {
      table_stats = std::move(loaded).value();
      cost_context.stats = &table_stats;
      break;
    }
  }

  for (size_t i = 0; i < candidates.size(); ++i) {
    CandidateExplain& ce = ex.candidates[i];
    ce.describe = candidates[i].Describe();
    ce.signature = candidates[i].Signature();
    std::optional<index::CatalogEntry> entry =
        catalog.Find(input_path, ce.signature);
    if (!entry.has_value()) {
      ce.verdict = "uncataloged";
      ce.reason = "no matching artifact in catalog";
      continue;
    }
    ce.cataloged = true;
    ce.verdict = "rejected";  // chosen candidate overrides below
    ce.artifact_path = entry->artifact_path;
    Avail avail{i, std::move(*entry), std::nullopt};
    Result<CandidateCost> cost_or = EstimateArtifactCost(
        candidates[i], avail.entry, report, cost_context);
    if (cost_or.ok()) {
      avail.cost = *cost_or;
      ce.est_bytes = cost_or->bytes;
      ce.est_selectivity = cost_or->selectivity;
      ce.provenance = cost_or->provenance;
      ce.cost_detail = cost_or->detail;
      ce.interval_selectivity = cost_or->interval_selectivity;
    } else {
      ce.reason = "unpriceable: " + cost_or.status().ToString();
    }
    available.push_back(std::move(avail));
  }
  plan_span.AddArg("candidates", std::to_string(candidates.size()));
  plan_span.AddArg("cataloged", std::to_string(available.size()));

  auto reject_instant = [](const CandidateExplain& ce,
                           const char* reason) {
    obs::TraceInstant(
        "optimizer.candidate_rejected", "optimizer",
        {{"candidate", ce.describe},
         {"reason", reason},
         {"est_bytes", ce.est_bytes >= 0
                           ? StrPrintf("%.0f", ce.est_bytes)
                           : std::string("unpriceable")}});
    obs::MetricsRegistry::Get()
        .GetCounter("optimizer.candidates_rejected")
        ->Increment();
  };

  if (!options.cost_based) {
    if (!available.empty()) {
      // Rule-based: the pre-ranked head wins; the rest are rejected
      // by rank (their estimates still land in the trace + EXPLAIN).
      for (size_t i = 1; i < available.size(); ++i) {
        CandidateExplain& ce = ex.candidates[available[i].idx];
        if (ce.reason.empty()) ce.reason = "rule-based rank";
        reject_instant(ce, "rule-based rank");
      }
      const Avail& head = available[0];
      MANIMAL_ASSIGN_OR_RETURN(
          Plan plan, MakePlanForSpec(program, candidates[head.idx],
                                     head.entry, report));
      CandidateExplain& ce = ex.candidates[head.idx];
      ce.verdict = "chosen";
      ce.chosen = true;
      ce.reason = "rule-based rank: most optimizations exploited";
      if (head.cost.has_value()) {
        ex.est_bytes = head.cost->bytes;
        ex.est_selectivity = head.cost->selectivity;
        ex.est_provenance = head.cost->provenance;
      }
      return FinalizePlan(std::move(plan), std::move(ex), report,
                          cost_context.stats);
    }
  } else {
    // Price everything, including the plain scan.
    MANIMAL_RETURN_IF_ERROR(input_bytes_or.status());
    const uint64_t input_bytes = *input_bytes_or;
    CandidateCost best = BaselineCost(input_bytes);
    int chosen = -1;
    for (size_t i = 0; i < available.size(); ++i) {
      const Avail& avail = available[i];
      CandidateExplain& ce = ex.candidates[avail.idx];
      if (!avail.cost.has_value()) {
        // Unpriceable: skip, stay safe.
        reject_instant(ce, "unpriceable");
        continue;
      }
      obs::TraceInstant(
          "optimizer.candidate_priced", "optimizer",
          {{"candidate", ce.describe},
           {"est_bytes", StrPrintf("%.0f", avail.cost->bytes)},
           {"selectivity", StrPrintf("%.4f", avail.cost->selectivity)}});
      if (avail.cost->bytes < best.bytes) {
        best = *avail.cost;
        chosen = static_cast<int>(i);
      } else {
        ce.reason = "costlier than best";
        reject_instant(ce, "costlier than best");
      }
    }
    // A candidate displaced by a later, cheaper one never got a
    // rejection instant (parity with the pre-EXPLAIN behavior), but
    // EXPLAIN still labels it.
    for (size_t i = 0; i < available.size(); ++i) {
      if (static_cast<int>(i) == chosen) continue;
      CandidateExplain& ce = ex.candidates[available[i].idx];
      if (ce.reason.empty()) ce.reason = "costlier than chosen plan";
    }
    if (chosen >= 0) {
      const Avail& winner = available[chosen];
      MANIMAL_ASSIGN_OR_RETURN(
          Plan plan, MakePlanForSpec(program, candidates[winner.idx],
                                     winner.entry, report));
      plan.explanation += StrPrintf("; cost-based choice: %s (~%s)",
                                    best.detail.c_str(),
                                    HumanBytes(static_cast<uint64_t>(
                                                   best.bytes))
                                        .c_str());
      CandidateExplain& ce = ex.candidates[winner.idx];
      ce.verdict = "chosen";
      ce.chosen = true;
      ce.reason = "cheapest in estimated bytes moved";
      ex.est_bytes = best.bytes;
      ex.est_selectivity = best.selectivity;
      ex.est_provenance = best.provenance;
      return FinalizePlan(std::move(plan), std::move(ex), report,
                          cost_context.stats);
    }
    if (!available.empty()) {
      // Artifacts exist but none beats the scan.
      Plan plan;
      plan.descriptor = BaselineDescriptor(program, input_path);
      plan.explanation = StrPrintf(
          "cost-based: no cataloged artifact beats the full scan "
          "(~%s); running conventionally",
          HumanBytes(input_bytes).c_str());
      AttachReduceFilter(report, &plan);
      ex.est_bytes = static_cast<double>(input_bytes);
      ex.est_selectivity = 1.0;
      return FinalizePlan(std::move(plan), std::move(ex), report,
                          cost_context.stats);
    }
  }

  Plan plan;
  plan.descriptor = BaselineDescriptor(program, input_path);
  plan.explanation =
      candidates.empty()
          ? "no optimizations detected; running conventionally"
          : "no matching index artifact in catalog; running "
            "conventionally (index-generation program available)";
  AttachReduceFilter(report, &plan);
  if (plan.optimized) {
    plan.explanation += "; pre-shuffle reduce-key filtering in effect";
  }
  return FinalizePlan(std::move(plan), std::move(ex), report,
                      cost_context.stats);
}

}  // namespace manimal::optimizer
