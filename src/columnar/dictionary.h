// String dictionary for direct-operation compression (paper Appendix
// C/D, Table 6): a string field is replaced on disk by an int32 code;
// equality-only consumers operate on codes without ever
// decompressing.
//
// File format: "MDIC" magic, varint count, count length-prefixed
// strings; a string's code is its position.

#ifndef MANIMAL_COLUMNAR_DICTIONARY_H_
#define MANIMAL_COLUMNAR_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace manimal::columnar {

// Accumulates codes during index generation.
class DictionaryBuilder {
 public:
  // Returns the code for `s`, assigning the next one on first sight.
  int64_t EncodeOrAdd(std::string_view s);

  int64_t size() const { return static_cast<int64_t>(strings_.size()); }

  Status Save(const std::string& path) const;

 private:
  std::unordered_map<std::string, int64_t> codes_;
  std::vector<std::string> strings_;
};

// Immutable lookup view loaded from a saved dictionary.
class Dictionary {
 public:
  static Result<Dictionary> Load(const std::string& path);

  // Code for an exact string; nullopt when the string never occurred
  // in the data (an equality test against it can never be true).
  std::optional<int64_t> Encode(std::string_view s) const;

  // The string for a code; OutOfRange on bad codes.
  Result<std::string> Decode(int64_t code) const;

  int64_t size() const { return static_cast<int64_t>(strings_.size()); }

 private:
  std::unordered_map<std::string, int64_t> codes_;
  std::vector<std::string> strings_;
};

}  // namespace manimal::columnar

#endif  // MANIMAL_COLUMNAR_DICTIONARY_H_
