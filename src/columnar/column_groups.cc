#include "columnar/column_groups.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "common/env.h"
#include "common/strings.h"

namespace manimal::columnar {

namespace {

std::string SiblingName(const std::string& manifest_path, int group) {
  return manifest_path + ".g" + std::to_string(group) + ".msq";
}

Status ValidateGrouping(const Schema& schema,
                        const std::vector<std::vector<int>>& grouping) {
  if (schema.opaque()) {
    return Status::InvalidArgument(
        "column groups require a structured schema");
  }
  std::vector<bool> seen(schema.num_fields(), false);
  for (const auto& group : grouping) {
    if (group.empty()) {
      return Status::InvalidArgument("empty column group");
    }
    for (int f : group) {
      if (f < 0 || f >= schema.num_fields()) {
        return Status::InvalidArgument("column group field out of range");
      }
      if (seen[f]) {
        return Status::InvalidArgument(
            "field appears in two column groups");
      }
      seen[f] = true;
    }
  }
  for (bool s : seen) {
    if (!s) {
      return Status::InvalidArgument(
          "grouping does not cover every field");
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<std::vector<int>> PerFieldGrouping(const Schema& schema) {
  std::vector<std::vector<int>> grouping;
  for (int i = 0; i < schema.num_fields(); ++i) {
    grouping.push_back({i});
  }
  return grouping;
}

// ---------------- writer ----------------

Result<std::unique_ptr<ColumnGroupWriter>> ColumnGroupWriter::Create(
    const std::string& manifest_path, const Schema& schema,
    std::vector<std::vector<int>> grouping, uint32_t records_per_block) {
  MANIMAL_RETURN_IF_ERROR(ValidateGrouping(schema, grouping));
  if (records_per_block == 0) {
    return Status::InvalidArgument("records_per_block must be positive");
  }
  auto writer = std::unique_ptr<ColumnGroupWriter>(new ColumnGroupWriter());
  writer->manifest_path_ = manifest_path;
  writer->schema_ = schema;
  writer->grouping_ = std::move(grouping);
  for (size_t g = 0; g < writer->grouping_.size(); ++g) {
    SeqFileMeta meta;
    meta.original_schema = schema;
    meta.stored_schema = schema.Project(writer->grouping_[g]);
    meta.field_map = writer->grouping_[g];
    meta.has_key_slot = true;
    SeqFileWriter::Options options;
    options.records_per_block = records_per_block;
    std::string path = SiblingName(manifest_path, static_cast<int>(g));
    MANIMAL_ASSIGN_OR_RETURN(
        std::unique_ptr<SeqFileWriter> sibling,
        SeqFileWriter::Create(path, std::move(meta), options));
    writer->writers_.push_back(std::move(sibling));
    writer->sibling_paths_.push_back(std::move(path));
  }
  return writer;
}

Status ColumnGroupWriter::Append(int64_t key, const Record& record) {
  if (static_cast<int>(record.size()) != schema_.num_fields()) {
    return Status::InvalidArgument("record arity != schema");
  }
  for (size_t g = 0; g < grouping_.size(); ++g) {
    Record slice;
    slice.reserve(grouping_[g].size());
    for (int f : grouping_[g]) slice.push_back(record[f]);
    MANIMAL_RETURN_IF_ERROR(writers_[g]->Append(key, slice));
  }
  ++num_records_;
  return Status::OK();
}

Result<uint64_t> ColumnGroupWriter::Finish() {
  uint64_t total = 0;
  std::vector<uint64_t> sizes;
  for (auto& w : writers_) {
    MANIMAL_ASSIGN_OR_RETURN(uint64_t bytes, w->Finish());
    sizes.push_back(bytes);
    total += bytes;
  }
  std::string manifest = "MCGS v1\n";
  manifest += "schema\t" + schema_.ToString() + "\n";
  for (size_t g = 0; g < grouping_.size(); ++g) {
    std::vector<std::string> fields;
    for (int f : grouping_[g]) fields.push_back(std::to_string(f));
    manifest += "group\t" + JoinStrings(fields, ",") + "\t" +
                std::filesystem::path(sibling_paths_[g])
                    .filename()
                    .string() +
                "\t" + std::to_string(sizes[g]) + "\n";
  }
  MANIMAL_RETURN_IF_ERROR(WriteStringToFile(manifest_path_, manifest));
  MANIMAL_ASSIGN_OR_RETURN(uint64_t manifest_bytes,
                           GetFileSize(manifest_path_));
  return total + manifest_bytes;
}

// ---------------- reader ----------------

Result<std::shared_ptr<ColumnGroupReader>> ColumnGroupReader::Open(
    const std::string& manifest_path) {
  std::shared_ptr<ColumnGroupReader> reader(new ColumnGroupReader());
  MANIMAL_RETURN_IF_ERROR(reader->Init(manifest_path));
  return reader;
}

Status ColumnGroupReader::Init(const std::string& manifest_path) {
  MANIMAL_ASSIGN_OR_RETURN(std::string text,
                           ReadFileToString(manifest_path));
  std::vector<std::string> lines = SplitString(text, '\n');
  if (lines.empty() || lines[0] != "MCGS v1") {
    return Status::Corruption("bad column-group manifest: " +
                              manifest_path);
  }
  std::string dir =
      std::filesystem::path(manifest_path).parent_path().string();
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> cols = SplitString(lines[i], '\t');
    if (cols[0] == "schema" && cols.size() == 2) {
      MANIMAL_ASSIGN_OR_RETURN(schema_, Schema::Parse(cols[1]));
    } else if (cols[0] == "group" && cols.size() == 4) {
      ColumnGroup group;
      for (const std::string& f : SplitString(cols[1], ',')) {
        group.fields.push_back(
            static_cast<int>(std::strtol(f.c_str(), nullptr, 10)));
      }
      group.path = dir.empty() ? cols[2] : dir + "/" + cols[2];
      group.bytes = std::strtoull(cols[3].c_str(), nullptr, 10);
      groups_.push_back(std::move(group));
    } else {
      return Status::Corruption("bad manifest line: " + lines[i]);
    }
  }
  if (groups_.empty()) {
    return Status::Corruption("manifest has no groups");
  }
  MANIMAL_RETURN_IF_ERROR(ValidateGrouping(schema_, [this] {
    std::vector<std::vector<int>> grouping;
    for (const ColumnGroup& g : groups_) grouping.push_back(g.fields);
    return grouping;
  }()));
  for (const ColumnGroup& group : groups_) {
    MANIMAL_ASSIGN_OR_RETURN(std::shared_ptr<SeqFileReader> sibling,
                             SeqFileReader::Open(group.path));
    if (!readers_.empty()) {
      if (sibling->num_blocks() != readers_[0]->num_blocks() ||
          sibling->num_records() != readers_[0]->num_records()) {
        return Status::Corruption(
            "column-group siblings are not row-aligned");
      }
    }
    total_bytes_ += group.bytes;
    readers_.push_back(std::move(sibling));
  }
  num_blocks_ = readers_[0]->num_blocks();
  num_records_ = readers_[0]->num_records();
  return Status::OK();
}

ColumnGroupReader::GroupSelection ColumnGroupReader::SelectGroups(
    const std::vector<int>& needed_fields) const {
  GroupSelection selection;
  std::vector<bool> needed(schema_.num_fields(),
                           needed_fields.empty());
  for (int f : needed_fields) {
    if (f >= 0 && f < schema_.num_fields()) needed[f] = true;
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    bool touch = false;
    for (int f : groups_[g].fields) touch = touch || needed[f];
    if (!touch) continue;
    selection.group_indexes.push_back(static_cast<int>(g));
    for (int f : groups_[g].fields) {
      selection.stored_fields.push_back(f);
    }
    selection.bytes += groups_[g].bytes;
  }
  if (selection.group_indexes.empty()) {
    // Nothing needed, but something must supply keys and record
    // count: read the smallest group.
    size_t best = 0;
    for (size_t g = 1; g < groups_.size(); ++g) {
      if (groups_[g].bytes < groups_[best].bytes) best = g;
    }
    selection.group_indexes.push_back(static_cast<int>(best));
    for (int f : groups_[best].fields) {
      selection.stored_fields.push_back(f);
    }
    selection.bytes = groups_[best].bytes;
  }
  return selection;
}

Result<ColumnGroupReader::ZippedStream> ColumnGroupReader::Scan(
    const GroupSelection& selection, uint64_t begin_block,
    uint64_t end_block) const {
  ZippedStream zipped;
  for (int g : selection.group_indexes) {
    MANIMAL_ASSIGN_OR_RETURN(SeqFileReader::RecordStream stream,
                             readers_.at(g)->Scan(begin_block, end_block));
    zipped.streams_.push_back(std::move(stream));
  }
  return zipped;
}

Result<bool> ColumnGroupReader::ZippedStream::Next(int64_t* key,
                                                   Record* record) {
  record->clear();
  bool first = true;
  bool any = false;
  for (SeqFileReader::RecordStream& stream : streams_) {
    int64_t stream_key = 0;
    Record slice;
    MANIMAL_ASSIGN_OR_RETURN(bool more, stream.Next(&stream_key, &slice));
    if (first) {
      if (!more) return false;
      *key = stream_key;
      any = true;
      first = false;
    } else {
      if (!more || stream_key != *key) {
        return Status::Corruption(
            "column-group siblings desynchronized during zip");
      }
    }
    for (Value& v : slice) record->push_back(std::move(v));
  }
  return any;
}

uint64_t ColumnGroupReader::ZippedStream::bytes_read() const {
  uint64_t total = 0;
  for (const SeqFileReader::RecordStream& stream : streams_) {
    total += stream.bytes_read();
  }
  return total;
}

}  // namespace manimal::columnar
