// Column-group storage — the paper's §2.1 extension to projection:
// "In the future we could modify Manimal projection to use
// 'column-groups' that break input data into different smaller files,
// increasing the number of user programs that could use an index, at
// the cost of possibly-increased program execution time."
//
// A ColumnGroupSet splits one logical file's columns across several
// SeqFile siblings, row-aligned (identical record order and identical
// records-per-block), described by a small text manifest. A consumer
// that needs a subset of fields opens only the groups covering them
// and zips their streams back into records — so ONE artifact serves
// every projection pattern, not just the one the analyzer saw.
//
// Manifest format (<name>.cgs, tab-separated after the keyword):
//   MCGS v1
//   schema <original schema string>
//   records_per_block <n>
//   group <comma field indexes> <sibling filename> <bytes>
//   ... one line per group

#ifndef MANIMAL_COLUMNAR_COLUMN_GROUPS_H_
#define MANIMAL_COLUMNAR_COLUMN_GROUPS_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/seqfile.h"
#include "common/status.h"

namespace manimal::columnar {

struct ColumnGroup {
  std::vector<int> fields;  // original field indexes, ascending
  std::string path;         // sibling SeqFile (absolute)
  uint64_t bytes = 0;
};

// One group per field — the pure column-store layout; the generic
// grouping the analyzer emits when it cannot predict future workloads.
std::vector<std::vector<int>> PerFieldGrouping(const Schema& schema);

class ColumnGroupWriter {
 public:
  // `grouping` must partition [0, schema.num_fields()).
  static Result<std::unique_ptr<ColumnGroupWriter>> Create(
      const std::string& manifest_path, const Schema& schema,
      std::vector<std::vector<int>> grouping,
      uint32_t records_per_block = 4096);

  // Appends a full record (all original fields); the writer routes
  // each field to its group file. `key` is persisted in every group.
  Status Append(int64_t key, const Record& record);

  // Finalizes every sibling and the manifest; returns total bytes.
  Result<uint64_t> Finish();

  uint64_t num_records() const { return num_records_; }

 private:
  ColumnGroupWriter() = default;

  std::string manifest_path_;
  Schema schema_;
  std::vector<std::vector<int>> grouping_;
  std::vector<std::unique_ptr<SeqFileWriter>> writers_;
  std::vector<std::string> sibling_paths_;
  uint64_t num_records_ = 0;
};

class ColumnGroupReader
    : public std::enable_shared_from_this<ColumnGroupReader> {
 public:
  static Result<std::shared_ptr<ColumnGroupReader>> Open(
      const std::string& manifest_path);

  const Schema& schema() const { return schema_; }
  const std::vector<ColumnGroup>& groups() const { return groups_; }
  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t num_records() const { return num_records_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // The minimal set of group indexes covering `needed_fields`
  // (all groups when empty), plus the byte cost of reading them.
  struct GroupSelection {
    std::vector<int> group_indexes;
    std::vector<int> stored_fields;  // original indexes, concatenated
                                     // in group order
    uint64_t bytes = 0;
  };
  GroupSelection SelectGroups(const std::vector<int>& needed_fields) const;

  // Streams zipped records of the selected groups over a row-aligned
  // block range. Records carry the selection's stored_fields layout.
  class ZippedStream {
   public:
    Result<bool> Next(int64_t* key, Record* record);
    uint64_t bytes_read() const;

   private:
    friend class ColumnGroupReader;
    std::vector<SeqFileReader::RecordStream> streams_;
  };

  Result<ZippedStream> Scan(const GroupSelection& selection,
                            uint64_t begin_block,
                            uint64_t end_block) const;

 private:
  ColumnGroupReader() = default;

  Status Init(const std::string& manifest_path);

  Schema schema_;
  std::vector<ColumnGroup> groups_;
  std::vector<std::shared_ptr<SeqFileReader>> readers_;
  uint64_t num_blocks_ = 0;
  uint64_t num_records_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace manimal::columnar

#endif  // MANIMAL_COLUMNAR_COLUMN_GROUPS_H_
