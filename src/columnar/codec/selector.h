// Per-column codec-chain selection at index-build time (ROADMAP item
// 3, paper §2.1 "Compression"). The builder samples a prefix of the
// stored records it is about to write, summarizes each i64/dict slot
// with the PR-6 statistics machinery (KMV distinct-count sketches),
// and picks a block codec chain:
//
//   * near-constant columns (NDV <= 2 in the sample) make the block
//     body long-run-heavy once the per-record framing repeats, so the
//     chain leads with RLE before the LZ stage: "rle+mlz";
//   * everything else gets the LZ stage alone: "mlz".
//
// Selection is policy, not mechanism: whatever chain is chosen is
// recorded in the seqfile header and the catalog, and readers resolve
// it purely through the codec registry.
//
// The MANIMAL_CODECS knob (docs/observability.md) overrides the
// policy: "off" writes raw v1-compatible blocks, "auto" (default)
// applies the sampling policy, and any other value is an explicit
// chain spec (e.g. "rle", "mlz", "rle+mlz") applied verbatim.
// Skip frames ride along whenever codecs are not "off".

#ifndef MANIMAL_COLUMNAR_CODEC_SELECTOR_H_
#define MANIMAL_COLUMNAR_CODEC_SELECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "columnar/seqfile.h"
#include "common/status.h"
#include "serde/schema.h"
#include "stats/stats.h"

namespace manimal::columnar {

// How MANIMAL_CODECS resolved.
enum class CodecMode {
  kOff,       // raw blocks, v1 format, no skip frames
  kAuto,      // stats-driven chain selection (default)
  kExplicit,  // chain forced by the knob
};

struct CodecPolicy {
  CodecMode mode = CodecMode::kAuto;
  std::string explicit_chain;  // only for kExplicit

  // Reads MANIMAL_CODECS; an explicit chain spec is validated against
  // the registry so typos fail at build time.
  static Result<CodecPolicy> FromEnv();
};

// What the selector decided, ready to drop into SeqFileWriter::Options
// and the journal.
struct CodecSelection {
  std::string chain;        // "" = raw blocks
  bool skip_frames = false;
  std::string reason;       // human-readable, for EXPLAIN/journal
};

// Streaming selector: feed it the first records (in STORED layout,
// the same records handed to SeqFileWriter::Append) and ask for the
// chain. Sampling stops after kSampleCap records; callers may simply
// Observe every record they buffer.
class CodecSelector {
 public:
  static constexpr size_t kSampleCap = 4096;

  CodecSelector(CodecPolicy policy, const SeqFileMeta& meta);

  void Observe(const Record& stored_record);
  size_t observed() const { return observed_; }

  CodecSelection Choose() const;

 private:
  CodecPolicy policy_;
  bool opaque_;
  size_t observed_ = 0;
  // Stored slots worth sketching (i64/str — columns whose repetition
  // drives the chain choice), with a KMV collector each.
  std::vector<int> sketch_slots_;
  std::vector<stats::ColumnStatsCollector> sketches_;
};

}  // namespace manimal::columnar

#endif  // MANIMAL_COLUMNAR_CODEC_SELECTOR_H_
