// Chained compression codec framework for SeqFile blocks — the
// ClickHouse-style generalization of the hard-wired delta/dictionary
// paths (ROADMAP item 3): each codec owns a one-byte method id, block
// bodies carry the chain of method bytes they were compressed with,
// and decompression resolves every method byte through a process-wide
// registry (an unregistered byte is a Corruption, never silent
// garbage).
//
// Two layers cooperate:
//   * column stage — the existing per-slot delta (zigzag varints) and
//     dictionary (code) encodings, chosen by the analyzer because they
//     preserve direct-operation semantics per record;
//   * block stage — the general-purpose codecs here, applied to the
//     whole encoded block body (e.g. Delta+Mlz is "delta slots, then
//     the mlz LZ codec over the block").
//
// The framed block layout (inside the usual fixed32 length envelope):
//
//   [u8 chain_len] [chain_len method bytes, outermost last]
//   [varint raw_size] [payload]
//
// chain_len == 0 means the payload is the raw body (still framed, so
// one parser handles every v2 block). Codecs are deterministic and
// dependency-free: the container bakes no LZ4/zstd, so the LZ stage is
// a small hand-rolled LZ77 ("mlz") with an LZ4-flavored token format.

#ifndef MANIMAL_COLUMNAR_CODEC_CODEC_H_
#define MANIMAL_COLUMNAR_CODEC_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace manimal::columnar {

// Block-stage codec interface. Compress/Decompress append to *out.
// Decompress must tolerate arbitrary (corrupt) input: bounds-check
// everything and return Corruption instead of reading out of range.
class ICompressionCodec {
 public:
  virtual ~ICompressionCodec() = default;

  // The on-disk method id recorded in the block frame. 0x00 is
  // reserved as invalid so zeroed corruption is caught.
  virtual uint8_t method_byte() const = 0;
  virtual const char* name() const = 0;

  virtual void Compress(std::string_view in, std::string* out) const = 0;
  virtual Status Decompress(std::string_view in, std::string* out) const = 0;
};

// Registered method bytes.
inline constexpr uint8_t kCodecMethodNone = 0x01;
inline constexpr uint8_t kCodecMethodRle = 0x02;
inline constexpr uint8_t kCodecMethodMlz = 0x03;

// Process-wide codec registry. Built-in codecs are registered on first
// use; lookups by an unknown method byte return Corruption (the
// SeqFileReader contract) and by an unknown name InvalidArgument.
class CodecRegistry {
 public:
  static CodecRegistry& Get();

  Result<const ICompressionCodec*> ByMethod(uint8_t method) const;
  Result<const ICompressionCodec*> ByName(std::string_view name) const;

  // Takes ownership; replaces any codec previously holding the same
  // method byte or name (tests register throwaway codecs this way).
  void Register(std::unique_ptr<ICompressionCodec> codec);

 private:
  CodecRegistry();
  struct Impl;
  Impl* impl_;
};

// An ordered chain of block-stage codecs, applied first-to-last on
// compression and last-to-first on decompression.
class CodecChain {
 public:
  CodecChain() = default;

  // Parses a '+'-joined spec, e.g. "rle+mlz". "" and "none" both mean
  // the empty chain (framed but uncompressed).
  static Result<CodecChain> Parse(std::string_view spec);

  bool empty() const { return codecs_.empty(); }
  size_t size() const { return codecs_.size(); }

  // '+'-joined names; "" for the empty chain.
  std::string ToString() const;

  // Appends the framed block ([chain][raw_size][payload]) to *out.
  Status CompressBlock(std::string_view raw, std::string* out) const;

  // Inverse of CompressBlock over any chain: resolves the frame's
  // method bytes through the registry (Corruption when one is
  // unregistered), decompresses innermost-last, and verifies the
  // recorded raw size. *chain_spec (optional) receives the
  // '+'-joined chain names for reporting.
  static Status DecompressBlock(std::string_view framed, std::string* raw,
                                std::string* chain_spec = nullptr);

 private:
  std::vector<const ICompressionCodec*> codecs_;
};

}  // namespace manimal::columnar

#endif  // MANIMAL_COLUMNAR_CODEC_CODEC_H_
