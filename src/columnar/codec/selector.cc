#include "columnar/codec/selector.h"

#include <cstdlib>

#include "columnar/codec/codec.h"
#include "common/strings.h"
#include "serde/key_codec.h"

namespace manimal::columnar {

Result<CodecPolicy> CodecPolicy::FromEnv() {
  CodecPolicy policy;
  const char* v = std::getenv("MANIMAL_CODECS");
  if (v == nullptr || std::string_view(v) == "auto" ||
      std::string_view(v).empty()) {
    policy.mode = CodecMode::kAuto;
    return policy;
  }
  if (std::string_view(v) == "off" || std::string_view(v) == "0" ||
      std::string_view(v) == "false") {
    policy.mode = CodecMode::kOff;
    return policy;
  }
  // Anything else is an explicit chain spec; parse it now so a typo
  // fails the build instead of producing raw blocks silently.
  MANIMAL_ASSIGN_OR_RETURN(CodecChain chain, CodecChain::Parse(v));
  policy.mode = CodecMode::kExplicit;
  policy.explicit_chain = chain.ToString();
  return policy;
}

CodecSelector::CodecSelector(CodecPolicy policy, const SeqFileMeta& meta)
    : policy_(std::move(policy)),
      opaque_(meta.stored_schema.opaque()) {
  if (policy_.mode != CodecMode::kAuto || opaque_) return;
  for (int s = 0; s < meta.stored_schema.num_fields(); ++s) {
    const FieldType t = meta.stored_schema.field(s).type;
    if (t == FieldType::kI64 || t == FieldType::kStr) {
      sketch_slots_.push_back(s);
      sketches_.emplace_back();
    }
  }
}

void CodecSelector::Observe(const Record& stored_record) {
  if (observed_ >= kSampleCap) return;
  ++observed_;
  if (sketch_slots_.empty()) return;
  std::string key;
  for (size_t i = 0; i < sketch_slots_.size(); ++i) {
    const int s = sketch_slots_[i];
    if (s >= static_cast<int>(stored_record.size())) continue;
    key.clear();
    if (!EncodeOrderedKey(stored_record[s], &key).ok()) continue;
    sketches_[i].Add(key);
  }
}

CodecSelection CodecSelector::Choose() const {
  CodecSelection sel;
  switch (policy_.mode) {
    case CodecMode::kOff:
      sel.reason = "codecs off (MANIMAL_CODECS=off)";
      return sel;
    case CodecMode::kExplicit:
      sel.chain = policy_.explicit_chain;
      sel.skip_frames = true;
      sel.reason =
          StrPrintf("explicit chain '%s' (MANIMAL_CODECS)",
                    policy_.explicit_chain.c_str());
      return sel;
    case CodecMode::kAuto:
      break;
  }
  // Auto policy. Skip frames always ride along — they cost 16 bytes
  // per block per framed slot and enable block elision.
  sel.skip_frames = true;
  double min_ndv = -1;
  int min_slot = -1;
  for (size_t i = 0; i < sketch_slots_.size(); ++i) {
    const stats::ColumnStats cs = sketches_[i].Finish();
    if (cs.row_count == 0) continue;
    if (min_ndv < 0 || cs.ndv < min_ndv) {
      min_ndv = cs.ndv;
      min_slot = sketch_slots_[i];
    }
  }
  if (min_ndv >= 0 && min_ndv <= 2.0) {
    // A near-constant column means the encoded block body carries the
    // same bytes at every record boundary: a run-length stage ahead of
    // the LZ stage captures those runs cheaply.
    sel.chain = "rle+mlz";
    sel.reason = StrPrintf(
        "auto: slot %d near-constant (ndv~%.1f over %zu sampled) -> "
        "rle+mlz",
        min_slot, min_ndv, observed_);
  } else {
    sel.chain = "mlz";
    sel.reason = StrPrintf(
        "auto: default lz chain (min ndv~%.1f over %zu sampled)",
        min_ndv < 0 ? 0.0 : min_ndv, observed_);
  }
  return sel;
}

}  // namespace manimal::columnar
