#include "columnar/codec/codec.h"

#include <array>
#include <cstring>
#include <map>
#include <mutex>

#include "common/coding.h"
#include "common/strings.h"

namespace manimal::columnar {

namespace {

// Upper bound on any decompressed block body. Real blocks are ~16 KiB;
// the cap exists so corrupt length fields cannot turn decompression
// into an allocation bomb.
constexpr size_t kMaxDecodedBlockBytes = 1u << 30;

// ---------------- none ----------------

class NoneCodec : public ICompressionCodec {
 public:
  uint8_t method_byte() const override { return kCodecMethodNone; }
  const char* name() const override { return "none"; }
  void Compress(std::string_view in, std::string* out) const override {
    out->append(in.data(), in.size());
  }
  Status Decompress(std::string_view in, std::string* out) const override {
    out->append(in.data(), in.size());
    return Status::OK();
  }
};

// ---------------- rle ----------------
//
// Byte-level run-length encoding with literal runs, so incompressible
// input grows by at most 1/128:
//   token < 0x80:  literal run of token+1 bytes follows
//   token >= 0x80: the next byte repeats (token-0x80)+3 times
// Runs shorter than 3 ride in literal runs (a repeat token would not
// pay for itself).

class RleCodec : public ICompressionCodec {
 public:
  uint8_t method_byte() const override { return kCodecMethodRle; }
  const char* name() const override { return "rle"; }

  void Compress(std::string_view in, std::string* out) const override {
    size_t i = 0;
    size_t lit_start = 0;
    auto flush_literals = [&](size_t end) {
      size_t pos = lit_start;
      while (pos < end) {
        size_t n = std::min<size_t>(128, end - pos);
        out->push_back(static_cast<char>(n - 1));
        out->append(in.data() + pos, n);
        pos += n;
      }
    };
    while (i < in.size()) {
      size_t run = 1;
      while (i + run < in.size() && in[i + run] == in[i] && run < 130) {
        ++run;
      }
      if (run >= 3) {
        flush_literals(i);
        out->push_back(static_cast<char>(0x80 + (run - 3)));
        out->push_back(in[i]);
        i += run;
        lit_start = i;
      } else {
        i += run;
      }
    }
    flush_literals(in.size());
  }

  Status Decompress(std::string_view in, std::string* out) const override {
    while (!in.empty()) {
      const uint8_t token = static_cast<uint8_t>(in[0]);
      in.remove_prefix(1);
      if (token < 0x80) {
        const size_t n = static_cast<size_t>(token) + 1;
        if (in.size() < n) return Status::Corruption("rle: short literal run");
        out->append(in.data(), n);
        in.remove_prefix(n);
      } else {
        if (in.empty()) return Status::Corruption("rle: short repeat run");
        out->append(static_cast<size_t>(token - 0x80) + 3, in[0]);
        in.remove_prefix(1);
      }
      if (out->size() > kMaxDecodedBlockBytes) {
        return Status::Corruption("rle: output too large");
      }
    }
    return Status::OK();
  }
};

// ---------------- mlz ----------------
//
// A minimal greedy-match LZ77 with the LZ4 sequence shape (the
// container bakes no compression library, so the LZ stage is
// hand-rolled): each sequence is
//   [token: literal_len<<4 | (match_len-4)] [len extensions: 255...]
//   [literals] [u16le offset] [match len extensions]
// A nibble of 15 extends with 255-saturated continuation bytes. The
// final sequence may end after its literals (input exhaustion is the
// terminator, as in LZ4). Matches are >= 4 bytes within a 64 KiB
// window, found through a 8K-entry hash of 4-byte prefixes.

constexpr int kMlzHashBits = 13;
constexpr size_t kMlzWindow = 0xFFFF;

inline uint32_t MlzLoad32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t MlzHash(uint32_t v) {
  return (v * 2654435761u) >> (32 - kMlzHashBits);
}

void MlzPutLen(size_t extra, std::string* out) {
  while (extra >= 255) {
    out->push_back(static_cast<char>(0xFF));
    extra -= 255;
  }
  out->push_back(static_cast<char>(extra));
}

Status MlzGetLen(std::string_view* in, size_t* len) {
  while (true) {
    if (in->empty()) return Status::Corruption("mlz: truncated length");
    const uint8_t b = static_cast<uint8_t>((*in)[0]);
    in->remove_prefix(1);
    *len += b;
    if (b != 0xFF) return Status::OK();
    if (*len > kMaxDecodedBlockBytes) {
      return Status::Corruption("mlz: length overflow");
    }
  }
}

class MlzCodec : public ICompressionCodec {
 public:
  uint8_t method_byte() const override { return kCodecMethodMlz; }
  const char* name() const override { return "mlz"; }

  void Compress(std::string_view in, std::string* out) const override {
    const size_t n = in.size();
    std::array<int32_t, 1u << kMlzHashBits> table;
    table.fill(-1);
    size_t anchor = 0;
    size_t pos = 0;
    auto emit = [&](size_t lit_end, size_t match_len, size_t offset) {
      const size_t lit_len = lit_end - anchor;
      const size_t match_code = match_len - 4;
      uint8_t token =
          static_cast<uint8_t>(std::min<size_t>(lit_len, 15) << 4);
      token |= static_cast<uint8_t>(std::min<size_t>(match_code, 15));
      out->push_back(static_cast<char>(token));
      if (lit_len >= 15) MlzPutLen(lit_len - 15, out);
      out->append(in.data() + anchor, lit_len);
      out->push_back(static_cast<char>(offset & 0xFF));
      out->push_back(static_cast<char>((offset >> 8) & 0xFF));
      if (match_code >= 15) MlzPutLen(match_code - 15, out);
    };
    while (pos + 4 <= n) {
      const uint32_t seq = MlzLoad32(in.data() + pos);
      const uint32_t h = MlzHash(seq);
      const int32_t cand = table[h];
      table[h] = static_cast<int32_t>(pos);
      if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMlzWindow &&
          MlzLoad32(in.data() + cand) == seq) {
        size_t match_len = 4;
        while (pos + match_len < n &&
               in[cand + match_len] == in[pos + match_len]) {
          ++match_len;
        }
        emit(pos, match_len, pos - static_cast<size_t>(cand));
        pos += match_len;
        anchor = pos;
      } else {
        ++pos;
      }
    }
    // Trailing literals (possibly none): terminated by input
    // exhaustion on the decode side.
    const size_t lit_len = n - anchor;
    if (lit_len > 0) {
      uint8_t token =
          static_cast<uint8_t>(std::min<size_t>(lit_len, 15) << 4);
      out->push_back(static_cast<char>(token));
      if (lit_len >= 15) MlzPutLen(lit_len - 15, out);
      out->append(in.data() + anchor, lit_len);
    }
  }

  Status Decompress(std::string_view in, std::string* out) const override {
    while (!in.empty()) {
      const uint8_t token = static_cast<uint8_t>(in[0]);
      in.remove_prefix(1);
      size_t lit_len = token >> 4;
      if (lit_len == 15) {
        MANIMAL_RETURN_IF_ERROR(MlzGetLen(&in, &lit_len));
      }
      if (in.size() < lit_len) {
        return Status::Corruption("mlz: truncated literals");
      }
      out->append(in.data(), lit_len);
      in.remove_prefix(lit_len);
      if (in.empty()) break;  // final sequence ends in literals
      if (in.size() < 2) return Status::Corruption("mlz: truncated offset");
      const size_t offset = static_cast<uint8_t>(in[0]) |
                            (static_cast<size_t>(
                                 static_cast<uint8_t>(in[1]))
                             << 8);
      in.remove_prefix(2);
      if (offset == 0 || offset > out->size()) {
        return Status::Corruption("mlz: bad match offset");
      }
      size_t match_len = token & 0x0F;
      if (match_len == 15) {
        MANIMAL_RETURN_IF_ERROR(MlzGetLen(&in, &match_len));
      }
      match_len += 4;
      if (out->size() + match_len > kMaxDecodedBlockBytes) {
        return Status::Corruption("mlz: output too large");
      }
      // Byte-by-byte: matches may overlap their own output.
      size_t src = out->size() - offset;
      for (size_t i = 0; i < match_len; ++i) {
        out->push_back((*out)[src + i]);
      }
    }
    return Status::OK();
  }
};

}  // namespace

// ---------------- registry ----------------

struct CodecRegistry::Impl {
  mutable std::mutex mu;
  std::array<std::unique_ptr<ICompressionCodec>, 256> by_method;
  std::map<std::string, uint8_t, std::less<>> by_name;
};

CodecRegistry::CodecRegistry() : impl_(new Impl()) {
  Register(std::make_unique<NoneCodec>());
  Register(std::make_unique<RleCodec>());
  Register(std::make_unique<MlzCodec>());
}

CodecRegistry& CodecRegistry::Get() {
  static CodecRegistry* registry = new CodecRegistry();
  return *registry;
}

void CodecRegistry::Register(std::unique_ptr<ICompressionCodec> codec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->by_name[codec->name()] = codec->method_byte();
  impl_->by_method[codec->method_byte()] = std::move(codec);
}

Result<const ICompressionCodec*> CodecRegistry::ByMethod(
    uint8_t method) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const ICompressionCodec* codec = impl_->by_method[method].get();
  if (codec == nullptr) {
    return Status::Corruption(StrPrintf(
        "block names unregistered codec method byte 0x%02x", method));
  }
  return codec;
}

Result<const ICompressionCodec*> CodecRegistry::ByName(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end()) {
    return Status::InvalidArgument("unknown codec: " + std::string(name));
  }
  return impl_->by_method[it->second].get();
}

// ---------------- chain ----------------

Result<CodecChain> CodecChain::Parse(std::string_view spec) {
  CodecChain chain;
  if (spec.empty() || spec == "none") return chain;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t plus = spec.find('+', start);
    if (plus == std::string_view::npos) plus = spec.size();
    std::string_view part = spec.substr(start, plus - start);
    if (part.empty()) {
      return Status::InvalidArgument("empty codec in chain spec: " +
                                     std::string(spec));
    }
    if (part != "none") {
      MANIMAL_ASSIGN_OR_RETURN(const ICompressionCodec* codec,
                               CodecRegistry::Get().ByName(part));
      chain.codecs_.push_back(codec);
    }
    if (plus == spec.size()) break;
    start = plus + 1;
  }
  return chain;
}

std::string CodecChain::ToString() const {
  std::string out;
  for (const ICompressionCodec* codec : codecs_) {
    if (!out.empty()) out += '+';
    out += codec->name();
  }
  return out;
}

Status CodecChain::CompressBlock(std::string_view raw,
                                 std::string* out) const {
  out->push_back(static_cast<char>(codecs_.size()));
  for (const ICompressionCodec* codec : codecs_) {
    out->push_back(static_cast<char>(codec->method_byte()));
  }
  PutVarint64(out, raw.size());
  if (codecs_.empty()) {
    out->append(raw.data(), raw.size());
    return Status::OK();
  }
  std::string stage(raw);
  std::string next;
  for (const ICompressionCodec* codec : codecs_) {
    next.clear();
    codec->Compress(stage, &next);
    stage.swap(next);
  }
  out->append(stage);
  return Status::OK();
}

Status CodecChain::DecompressBlock(std::string_view framed,
                                   std::string* raw,
                                   std::string* chain_spec) {
  if (framed.empty()) return Status::Corruption("block frame truncated");
  const size_t chain_len = static_cast<uint8_t>(framed[0]);
  framed.remove_prefix(1);
  if (framed.size() < chain_len) {
    return Status::Corruption("block frame truncated");
  }
  std::vector<const ICompressionCodec*> codecs;
  codecs.reserve(chain_len);
  std::string spec;
  for (size_t i = 0; i < chain_len; ++i) {
    MANIMAL_ASSIGN_OR_RETURN(
        const ICompressionCodec* codec,
        CodecRegistry::Get().ByMethod(static_cast<uint8_t>(framed[i])));
    codecs.push_back(codec);
    if (!spec.empty()) spec += '+';
    spec += codec->name();
  }
  framed.remove_prefix(chain_len);
  uint64_t raw_size = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint64(&framed, &raw_size));
  if (raw_size > kMaxDecodedBlockBytes) {
    return Status::Corruption("block raw size too large");
  }
  if (chain_spec != nullptr) *chain_spec = std::move(spec);
  raw->clear();
  if (codecs.empty()) {
    raw->assign(framed.data(), framed.size());
  } else {
    std::string stage(framed);
    std::string next;
    for (size_t i = codecs.size(); i-- > 0;) {
      next.clear();
      MANIMAL_RETURN_IF_ERROR(codecs[i]->Decompress(stage, &next));
      stage.swap(next);
    }
    raw->swap(stage);
  }
  if (raw->size() != raw_size) {
    return Status::Corruption(
        StrPrintf("block raw size mismatch: frame says %llu, decoded %llu",
                  static_cast<unsigned long long>(raw_size),
                  static_cast<unsigned long long>(raw->size())));
  }
  return Status::OK();
}

}  // namespace manimal::columnar
