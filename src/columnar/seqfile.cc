#include "columnar/seqfile.h"

#include <algorithm>

#include "columnar/codec/codec.h"
#include "columnar/dictionary.h"
#include "common/check.h"
#include "common/coding.h"
#include "common/strings.h"
#include "serde/record_codec.h"

namespace manimal::columnar {

namespace {
constexpr char kMagic[4] = {'M', 'S', 'E', 'Q'};
constexpr uint32_t kFooterMagic = 0x5E0F0075;
constexpr uint8_t kFlagSkipFrames = 0x01;
}  // namespace

SeqFileMeta PlainMeta(const Schema& schema) {
  SeqFileMeta meta;
  meta.original_schema = schema;
  meta.stored_schema = schema;
  if (!schema.opaque()) {
    for (int i = 0; i < schema.num_fields(); ++i) {
      meta.field_map.push_back(i);
    }
  } else {
    meta.field_map.push_back(0);
  }
  return meta;
}

// ---------------- writer ----------------

Result<std::unique_ptr<SeqFileWriter>> SeqFileWriter::Create(
    const std::string& path, SeqFileMeta meta, Options options) {
  // Validate slots.
  const int slots = meta.stored_schema.opaque()
                        ? 1
                        : meta.stored_schema.num_fields();
  if (static_cast<int>(meta.field_map.size()) != slots) {
    return Status::InvalidArgument("field_map arity != stored schema");
  }
  for (int s : meta.delta_slots) {
    if (s < 0 || s >= slots ||
        meta.stored_schema.field(s).type != FieldType::kI64) {
      return Status::InvalidArgument(
          "delta slots must be i64 stored fields");
    }
  }
  for (int s : meta.dict_slots) {
    if (s < 0 || s >= slots ||
        meta.stored_schema.field(s).type != FieldType::kStr) {
      return Status::InvalidArgument(
          "dict slots must be str stored fields");
    }
  }
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                           WritableFile::Create(path));
  // Normalize the chain spec through the registry so unknown codec
  // names fail at create time, not at first read.
  MANIMAL_ASSIGN_OR_RETURN(CodecChain chain,
                           CodecChain::Parse(options.codec_chain));
  meta.codec_chain = chain.ToString();
  auto writer = std::unique_ptr<SeqFileWriter>(
      new SeqFileWriter(std::move(f), std::move(meta), options));
  writer->delta_prev_.assign(writer->meta_.delta_slots.size(), 0);
  writer->v2_ = !writer->meta_.codec_chain.empty() || options.skip_frames;
  if (!chain.empty()) {
    writer->chain_ = std::make_unique<CodecChain>(std::move(chain));
  }
  if (options.skip_frames && !writer->meta_.stored_schema.opaque()) {
    // Every stored slot whose decoded runtime value is an i64: plain
    // i64 columns, delta columns (i64 by construction), and
    // dictionary columns (surfaced as codes).
    writer->slot_frame_index_.assign(slots, -1);
    for (int s = 0; s < slots; ++s) {
      const bool dict =
          std::find(writer->meta_.dict_slots.begin(),
                    writer->meta_.dict_slots.end(),
                    s) != writer->meta_.dict_slots.end();
      if (writer->meta_.stored_schema.field(s).type == FieldType::kI64 ||
          dict) {
        writer->slot_frame_index_[s] =
            static_cast<int>(writer->frame_slots_.size());
        writer->frame_slots_.push_back(s);
      }
    }
    writer->block_min_.assign(writer->frame_slots_.size(), 0);
    writer->block_max_.assign(writer->frame_slots_.size(), 0);
  }
  MANIMAL_RETURN_IF_ERROR(writer->WriteHeader());
  return writer;
}

SeqFileWriter::SeqFileWriter(std::unique_ptr<WritableFile> file,
                             SeqFileMeta meta, Options options)
    : options_(std::move(options)),
      meta_(std::move(meta)),
      file_(std::move(file)) {}

SeqFileWriter::~SeqFileWriter() = default;

Status SeqFileWriter::WriteHeader() {
  std::string out(kMagic, 4);
  PutVarint32(&out, v2_ ? 2 : 1);  // version
  PutLengthPrefixed(&out, meta_.original_schema.ToString());
  PutLengthPrefixed(&out, meta_.stored_schema.ToString());
  PutVarint32(&out, static_cast<uint32_t>(meta_.field_map.size()));
  for (int f : meta_.field_map) PutVarint32(&out, f);
  PutVarint32(&out, static_cast<uint32_t>(meta_.delta_slots.size()));
  for (int s : meta_.delta_slots) PutVarint32(&out, s);
  PutVarint32(&out, static_cast<uint32_t>(meta_.dict_slots.size()));
  for (int s : meta_.dict_slots) PutVarint32(&out, s);
  PutLengthPrefixed(&out, meta_.dict_path);
  out.push_back(meta_.has_key_slot ? 1 : 0);
  if (v2_) {
    PutLengthPrefixed(&out, meta_.codec_chain);
    out.push_back(frame_slots_.empty() ? 0 : kFlagSkipFrames);
    PutVarint32(&out, static_cast<uint32_t>(frame_slots_.size()));
    for (int s : frame_slots_) PutVarint32(&out, s);
  }
  MANIMAL_RETURN_IF_ERROR(file_->Append(out));
  offset_ = out.size();
  return Status::OK();
}

Status SeqFileWriter::Append(int64_t key, const Record& stored_record) {
  if (!meta_.dict_slots.empty() && dict_builder_ == nullptr) {
    return Status::InvalidArgument(
        "dict-encoded file requires a dictionary builder");
  }
  if (meta_.has_key_slot) PutVarintSigned(&block_buf_, key);
  if (meta_.stored_schema.opaque()) {
    MANIMAL_RETURN_IF_ERROR(
        EncodeRecord(meta_.stored_schema, stored_record, &block_buf_));
  } else {
    if (static_cast<int>(stored_record.size()) !=
        meta_.stored_schema.num_fields()) {
      return Status::InvalidArgument("record arity != stored schema");
    }
    for (int s = 0; s < meta_.stored_schema.num_fields(); ++s) {
      const Value& v = stored_record[s];
      // The decoded i64 a reader will observe for this slot (value,
      // delta-reconstructed value, or dictionary code) — what the skip
      // frames bound.
      bool framed = false;
      int64_t framed_value = 0;
      // Delta slot?
      auto delta_it = std::find(meta_.delta_slots.begin(),
                                meta_.delta_slots.end(), s);
      if (delta_it != meta_.delta_slots.end()) {
        if (!v.is_i64()) {
          return Status::InvalidArgument("delta slot value must be i64");
        }
        size_t di = delta_it - meta_.delta_slots.begin();
        PutVarintSigned(&block_buf_, v.i64() - delta_prev_[di]);
        delta_prev_[di] = v.i64();
        framed = true;
        framed_value = v.i64();
      } else if (std::find(meta_.dict_slots.begin(),
                           meta_.dict_slots.end(),
                           s) != meta_.dict_slots.end()) {
        // Dict slot: frames bound the CODE — sound because direct
        // operation rewrites predicates to compare codes.
        if (!v.is_str()) {
          return Status::InvalidArgument("dict slot value must be str");
        }
        const int64_t code = dict_builder_->EncodeOrAdd(v.str());
        PutVarint64(&block_buf_, static_cast<uint64_t>(code));
        framed = true;
        framed_value = code;
      } else {
        switch (meta_.stored_schema.field(s).type) {
        case FieldType::kI64:
          if (!v.is_i64()) {
            return Status::InvalidArgument("expected i64 field");
          }
          // Fixed width, like the Java serialization the paper's
          // baseline files used (DataOutput writes longs as 8 bytes);
          // delta slots are where the size-sensitive representation
          // comes in (Appendix D).
          PutFixed64(&block_buf_, static_cast<uint64_t>(v.i64()));
          framed = true;
          framed_value = v.i64();
          break;
        case FieldType::kF64:
          if (!v.is_f64()) {
            return Status::InvalidArgument("expected f64 field");
          }
          PutDouble(&block_buf_, v.f64());
          break;
        case FieldType::kStr:
          if (!v.is_str()) {
            return Status::InvalidArgument("expected str field");
          }
          PutLengthPrefixed(&block_buf_, v.str());
          break;
        case FieldType::kBool:
          if (!v.is_bool()) {
            return Status::InvalidArgument("expected bool field");
          }
          block_buf_.push_back(v.bool_value() ? 1 : 0);
          break;
        }
      }
      if (framed && !slot_frame_index_.empty() &&
          slot_frame_index_[s] >= 0) {
        const int fi = slot_frame_index_[s];
        if (block_records_ == 0) {
          block_min_[fi] = block_max_[fi] = framed_value;
        } else {
          block_min_[fi] = std::min(block_min_[fi], framed_value);
          block_max_[fi] = std::max(block_max_[fi], framed_value);
        }
      }
    }
  }
  ++block_records_;
  ++num_records_;
  last_block_ = block_offsets_.size();
  last_index_in_block_ = block_records_ - 1;
  const bool full = options_.records_per_block > 0
                        ? block_records_ >= options_.records_per_block
                        : block_buf_.size() >= options_.target_block_bytes;
  if (full) {
    MANIMAL_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::OK();
}

Status SeqFileWriter::FlushBlock() {
  if (block_records_ == 0) return Status::OK();
  std::string body;
  PutVarint32(&body, block_records_);
  body += block_buf_;
  raw_body_bytes_ += body.size();
  if (v2_) {
    // Frame (and compress) the body; an empty chain still frames so
    // every v2 block parses the same way.
    std::string framed;
    if (chain_ != nullptr) {
      MANIMAL_RETURN_IF_ERROR(chain_->CompressBlock(body, &framed));
    } else {
      MANIMAL_RETURN_IF_ERROR(CodecChain().CompressBlock(body, &framed));
    }
    body = std::move(framed);
  }
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(body.size()));
  out += body;
  MANIMAL_RETURN_IF_ERROR(file_->Append(out));
  if (!frame_slots_.empty()) {
    for (size_t fi = 0; fi < frame_slots_.size(); ++fi) {
      frames_.push_back(block_min_[fi]);
      frames_.push_back(block_max_[fi]);
    }
  }
  block_offsets_.push_back(offset_);
  block_cum_records_.push_back(num_records_ - block_records_);
  offset_ += out.size();
  block_buf_.clear();
  block_records_ = 0;
  std::fill(delta_prev_.begin(), delta_prev_.end(), 0);
  return Status::OK();
}

Result<uint64_t> SeqFileWriter::Finish() {
  MANIMAL_RETURN_IF_ERROR(FlushBlock());
  uint64_t footer_offset = offset_;
  std::string footer;
  for (uint64_t off : block_offsets_) PutFixed64(&footer, off);
  for (uint64_t cum : block_cum_records_) PutFixed64(&footer, cum);
  for (int64_t bound : frames_) {
    PutFixed64(&footer, static_cast<uint64_t>(bound));
  }
  PutFixed64(&footer, block_offsets_.size());
  PutFixed64(&footer, num_records_);
  PutFixed64(&footer, footer_offset);
  PutFixed32(&footer, kFooterMagic);
  MANIMAL_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();
  MANIMAL_RETURN_IF_ERROR(file_->Close());
  return offset_;
}

// ---------------- reader ----------------

Result<std::shared_ptr<SeqFileReader>> SeqFileReader::Open(
    const std::string& path) {
  std::shared_ptr<SeqFileReader> reader(new SeqFileReader());
  MANIMAL_RETURN_IF_ERROR(reader->Init(path));
  return reader;
}

Status SeqFileReader::Init(const std::string& path) {
  path_ = path;
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           RandomAccessFile::Open(path));
  file_size_ = file->size();
  constexpr size_t kFooterTail = 8 + 8 + 8 + 4;
  if (file_size_ < kFooterTail) {
    return Status::Corruption("seqfile too small: " + path);
  }
  std::string tail;
  MANIMAL_RETURN_IF_ERROR(
      file->ReadAt(file_size_ - kFooterTail, kFooterTail, &tail));
  std::string_view in = tail;
  uint64_t nblocks = 0, nrecords = 0, footer_offset = 0;
  uint32_t magic = 0;
  MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &nblocks));
  MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &nrecords));
  MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &footer_offset));
  MANIMAL_RETURN_IF_ERROR(GetFixed32(&in, &magic));
  if (magic != 0x5E0F0075) {
    return Status::Corruption("bad seqfile footer magic: " + path);
  }
  num_records_ = nrecords;

  // Header (parsed before the footer body: the skip-frame region's
  // size depends on the frame-slot list declared here).
  std::string head;
  MANIMAL_RETURN_IF_ERROR(
      file->ReadAt(0, std::min<uint64_t>(file_size_, 64 * 1024), &head));
  std::string_view hin = head;
  if (hin.size() < 4 || hin.substr(0, 4) != std::string_view(kMagic, 4)) {
    return Status::Corruption("bad seqfile magic: " + path);
  }
  hin.remove_prefix(4);
  uint32_t version = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &version));
  if (version != 1 && version != 2) {
    return Status::Corruption("bad seqfile version");
  }
  version_ = version;
  std::string_view schema_text;
  MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&hin, &schema_text));
  MANIMAL_ASSIGN_OR_RETURN(meta_.original_schema,
                           Schema::Parse(schema_text));
  MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&hin, &schema_text));
  MANIMAL_ASSIGN_OR_RETURN(meta_.stored_schema, Schema::Parse(schema_text));
  uint32_t n = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &n));
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t v = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &v));
    meta_.field_map.push_back(static_cast<int>(v));
  }
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &n));
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t v = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &v));
    meta_.delta_slots.push_back(static_cast<int>(v));
  }
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &n));
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t v = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &v));
    meta_.dict_slots.push_back(static_cast<int>(v));
  }
  std::string_view dict_path;
  MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&hin, &dict_path));
  meta_.dict_path = std::string(dict_path);
  if (hin.empty()) return Status::Corruption("truncated seqfile header");
  meta_.has_key_slot = hin[0] != 0;
  hin.remove_prefix(1);
  bool has_frames = false;
  if (version_ >= 2) {
    std::string_view chain_spec;
    MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&hin, &chain_spec));
    meta_.codec_chain = std::string(chain_spec);
    if (hin.empty()) return Status::Corruption("truncated seqfile header");
    const uint8_t flags = static_cast<uint8_t>(hin[0]);
    hin.remove_prefix(1);
    has_frames = (flags & kFlagSkipFrames) != 0;
    uint32_t nframe = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &nframe));
    for (uint32_t i = 0; i < nframe; ++i) {
      uint32_t v = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarint32(&hin, &v));
      frame_slots_.push_back(static_cast<int>(v));
    }
    if (has_frames != !frame_slots_.empty()) {
      return Status::Corruption("seqfile frame flag/slot mismatch");
    }
  }

  // Footer body: offsets, cumulative counts, then (v2) the skip
  // frames, sized by the frame-slot list just parsed.
  if (nblocks > 0) {
    const uint64_t nframe = frame_slots_.size();
    const uint64_t footer_body = nblocks * 16 + nblocks * nframe * 16;
    if (footer_offset + footer_body + kFooterTail > file_size_) {
      return Status::Corruption("seqfile footer overruns file: " + path);
    }
    std::string offsets;
    MANIMAL_RETURN_IF_ERROR(
        file->ReadAt(footer_offset, footer_body, &offsets));
    std::string_view oin = offsets;
    block_offsets_.reserve(nblocks);
    for (uint64_t i = 0; i < nblocks; ++i) {
      uint64_t off = 0;
      MANIMAL_RETURN_IF_ERROR(GetFixed64(&oin, &off));
      block_offsets_.push_back(off);
    }
    block_cum_records_.reserve(nblocks);
    for (uint64_t i = 0; i < nblocks; ++i) {
      uint64_t cum = 0;
      MANIMAL_RETURN_IF_ERROR(GetFixed64(&oin, &cum));
      block_cum_records_.push_back(cum);
    }
    if (nframe > 0) {
      frames_.reserve(nblocks * nframe * 2);
      for (uint64_t i = 0; i < nblocks * nframe; ++i) {
        uint64_t lo = 0, hi = 0;
        MANIMAL_RETURN_IF_ERROR(GetFixed64(&oin, &lo));
        MANIMAL_RETURN_IF_ERROR(GetFixed64(&oin, &hi));
        frames_.push_back(static_cast<int64_t>(lo));
        frames_.push_back(static_cast<int64_t>(hi));
      }
    }
    block_sizes_.reserve(nblocks);
    for (uint64_t i = 0; i < nblocks; ++i) {
      uint64_t end =
          (i + 1 < nblocks) ? block_offsets_[i + 1] : footer_offset;
      block_sizes_.push_back(end - block_offsets_[i]);
    }
  }

  const int slots = meta_.stored_schema.opaque()
                        ? 1
                        : meta_.stored_schema.num_fields();
  is_delta_slot_.assign(slots, false);
  is_dict_slot_.assign(slots, false);
  for (int s : meta_.delta_slots) {
    if (s < 0 || s >= slots) return Status::Corruption("bad delta slot");
    is_delta_slot_[s] = true;
  }
  for (int s : meta_.dict_slots) {
    if (s < 0 || s >= slots) return Status::Corruption("bad dict slot");
    is_dict_slot_[s] = true;
  }
  return Status::OK();
}

bool SeqFileReader::BlockSlotBounds(uint64_t block, int slot,
                                    int64_t* min, int64_t* max) const {
  if (block >= num_blocks()) return false;
  const auto it =
      std::find(frame_slots_.begin(), frame_slots_.end(), slot);
  if (it == frame_slots_.end()) return false;
  const size_t fi = it - frame_slots_.begin();
  const size_t base = (block * frame_slots_.size() + fi) * 2;
  *min = frames_[base];
  *max = frames_[base + 1];
  return true;
}

uint64_t SeqFileReader::BlockRecordCount(uint64_t block) const {
  if (block >= num_blocks()) return 0;
  const uint64_t next = (block + 1 < num_blocks())
                            ? block_cum_records_[block + 1]
                            : num_records_;
  return next - block_cum_records_[block];
}

Result<SeqFileReader::RecordStream> SeqFileReader::Scan(
    uint64_t begin_block, uint64_t end_block) const {
  if (begin_block > end_block || end_block > num_blocks()) {
    return Status::InvalidArgument("bad block range");
  }
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           RandomAccessFile::Open(path_));
  return RecordStream(shared_from_this(), std::move(file), begin_block,
                      end_block);
}

Status SeqFileReader::DecodeStored(std::string_view* in,
                                   std::vector<int64_t>* delta_prev,
                                   Record* out,
                                   bool borrow_strings) const {
  out->clear();
  if (meta_.stored_schema.opaque()) {
    return DecodeRecord(meta_.stored_schema, in, out, borrow_strings);
  }
  out->reserve(meta_.stored_schema.num_fields());
  size_t delta_index = 0;
  for (int s = 0; s < meta_.stored_schema.num_fields(); ++s) {
    if (is_delta_slot_[s]) {
      int64_t d = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarintSigned(in, &d));
      int64_t v = (*delta_prev)[delta_index] + d;
      (*delta_prev)[delta_index] = v;
      ++delta_index;
      out->push_back(Value::I64(v));
      continue;
    }
    if (is_dict_slot_[s]) {
      uint64_t code = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarint64(in, &code));
      out->push_back(Value::I64(static_cast<int64_t>(code)));
      continue;
    }
    switch (meta_.stored_schema.field(s).type) {
      case FieldType::kI64: {
        uint64_t raw = 0;
        MANIMAL_RETURN_IF_ERROR(GetFixed64(in, &raw));
        out->push_back(Value::I64(static_cast<int64_t>(raw)));
        break;
      }
      case FieldType::kF64: {
        double v = 0;
        MANIMAL_RETURN_IF_ERROR(GetDouble(in, &v));
        out->push_back(Value::F64(v));
        break;
      }
      case FieldType::kStr: {
        std::string_view s2;
        MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(in, &s2));
        out->push_back(borrow_strings ? Value::Borrowed(s2)
                                      : Value::Str(s2));
        break;
      }
      case FieldType::kBool: {
        if (in->empty()) return Status::Corruption("truncated bool");
        out->push_back(Value::Bool((*in)[0] != 0));
        in->remove_prefix(1);
        break;
      }
    }
  }
  return Status::OK();
}

Status SeqFileReader::ReadBlockBody(RandomAccessFile* file,
                                    uint64_t block, std::string* body,
                                    uint64_t* bytes_read,
                                    uint64_t* bytes_decoded) const {
  std::string raw;
  MANIMAL_RETURN_IF_ERROR(
      file->ReadAt(block_offsets_[block], block_sizes_[block], &raw));
  *bytes_read += raw.size();
  std::string_view in = raw;
  uint32_t body_len = 0;
  MANIMAL_RETURN_IF_ERROR(GetFixed32(&in, &body_len));
  if (in.size() != body_len) {
    return Status::Corruption("block length mismatch");
  }
  body->clear();
  if (version_ >= 2) {
    MANIMAL_RETURN_IF_ERROR(CodecChain::DecompressBlock(in, body));
  } else {
    body->assign(in.data(), in.size());
  }
  *bytes_decoded += body->size();
  return Status::OK();
}

Status SeqFileReader::RecordStream::LoadNextBlock() {
  const SeqFileReader& r = *reader_;
  MANIMAL_RETURN_IF_ERROR(r.ReadBlockBody(file_.get(), next_block_,
                                          &block_data_, &bytes_read_,
                                          &bytes_decoded_));
  cursor_ = block_data_;
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&cursor_, &remaining_));
  record_in_block_ = 0;
  delta_prev_.assign(r.meta_.delta_slots.size(), 0);
  next_ordinal_ =
      static_cast<int64_t>(r.block_cum_records_[next_block_]);
  ++next_block_;
  return Status::OK();
}

Result<bool> SeqFileReader::RecordStream::Next(int64_t* key,
                                               Record* record) {
  while (remaining_ == 0) {
    if (next_block_ >= end_block_) return false;
    if (skip_blocks_ != nullptr && next_block_ < skip_blocks_->size() &&
        (*skip_blocks_)[next_block_]) {
      // Direct evaluation proved no row in this block can satisfy the
      // predicate: advance past it without reading or decompressing.
      ++blocks_skipped_;
      records_skipped_ += reader_->BlockRecordCount(next_block_);
      ++next_block_;
      continue;
    }
    MANIMAL_RETURN_IF_ERROR(LoadNextBlock());
  }
  if (reader_->meta_.has_key_slot) {
    MANIMAL_RETURN_IF_ERROR(GetVarintSigned(&cursor_, key));
  } else {
    *key = next_ordinal_;
  }
  ++next_ordinal_;
  ++record_in_block_;
  MANIMAL_RETURN_IF_ERROR(
      reader_->DecodeStored(&cursor_, &delta_prev_, record,
                            borrow_strings_));
  --remaining_;
  return true;
}

Result<SeqFileReader::BlockAccessor> SeqFileReader::OpenBlockAccessor()
    const {
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           RandomAccessFile::Open(path_));
  return BlockAccessor(shared_from_this(), std::move(file));
}

Status SeqFileReader::BlockAccessor::Load(uint64_t block) {
  if (block == loaded_block_) return Status::OK();
  const SeqFileReader& r = *reader_;
  if (block >= r.num_blocks()) {
    return Status::InvalidArgument("block index out of range");
  }
  std::string body;
  MANIMAL_RETURN_IF_ERROR(r.ReadBlockBody(file_.get(), block, &body,
                                          &bytes_read_, &bytes_decoded_));
  std::string_view in = body;
  uint32_t count = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &count));
  records_.clear();
  keys_.clear();
  records_.reserve(count);
  keys_.reserve(count);
  std::vector<int64_t> delta_prev(r.meta_.delta_slots.size(), 0);
  int64_t ordinal = static_cast<int64_t>(r.block_cum_records_[block]);
  for (uint32_t i = 0; i < count; ++i) {
    int64_t key = ordinal + i;
    if (r.meta_.has_key_slot) {
      MANIMAL_RETURN_IF_ERROR(GetVarintSigned(&in, &key));
    }
    Record record;
    MANIMAL_RETURN_IF_ERROR(r.DecodeStored(&in, &delta_prev, &record));
    keys_.push_back(key);
    records_.push_back(std::move(record));
  }
  loaded_block_ = block;
  return Status::OK();
}

}  // namespace manimal::columnar
