// SeqFile — the on-disk record file format for both raw inputs and the
// optimized representations Manimal materializes:
//
//   * plain rows (the baseline "serialized objects" input file),
//   * projected rows (unneeded fields removed; column-store-lite,
//     paper §2.1 Projection),
//   * delta rows (numeric fields stored as zigzag-varint deltas from
//     the previous record, reset per block; paper Appendix C/D),
//   * dictionary rows (string fields stored as codes; paper Table 6).
//
// Layout:
//   header: "MSEQ" magic, varint version,
//           length-prefixed original-schema string,
//           length-prefixed stored-schema string,
//           varint field-map length + varints (stored slot i holds
//             original field field_map[i]),
//           varint delta-slot count + varints (stored slots),
//           varint dict-slot count + varints (stored slots),
//           length-prefixed dictionary sidecar path ("" if none)
//           [v2+] length-prefixed block codec chain spec ("" = none),
//                 flags byte (bit 0: footer has skip frames),
//                 varint frame-slot count + varints (stored slots)
//   blocks: fixed32 body length, body = varint record count + records
//           [v2] the body is codec-framed (columnar/codec/codec.h):
//                chain method bytes + raw size + compressed payload
//   footer: fixed64 * nblocks (block offsets),
//           fixed64 * nblocks (records preceding each block),
//           [v2, flag bit 0] per block, per frame slot: fixed64 min,
//                fixed64 max of the slot's decoded i64 values — the
//                skip frames direct predicate evaluation uses to prove
//                whole blocks cannot match without decompressing them
//           fixed64 nblocks, fixed64 nrecords,
//           fixed64 footer offset, fixed32 magic
//
// Version 1 files (no block codec chain, no skip frames) are written
// whenever neither feature is requested, and remain fully readable.
//
// Blocks are the split granularity for the execution fabric: a map
// task owns a contiguous block range. Each RecordStream opens its own
// file handle, so parallel tasks can scan disjoint ranges of one file.

#ifndef MANIMAL_COLUMNAR_SEQFILE_H_
#define MANIMAL_COLUMNAR_SEQFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "serde/schema.h"

namespace manimal::columnar {

class DictionaryBuilder;
class CodecChain;

struct SeqFileMeta {
  Schema original_schema;       // schema of the logical input records
  Schema stored_schema;         // schema of what is physically stored
  std::vector<int> field_map;   // stored slot -> original field index
  std::vector<int> delta_slots; // stored slots that are delta-encoded
  std::vector<int> dict_slots;  // stored slots that are dict-encoded
  std::string dict_path;        // sidecar ("" when dict_slots empty)
  // Derived files (projections, re-encodings) persist each record's
  // ORIGINAL map() key so user programs observe identical inputs; raw
  // files instead synthesize the key as the global record ordinal.
  bool has_key_slot = false;
  // Block-stage codec chain spec (e.g. "mlz", "rle+mlz"); "" means
  // blocks are stored raw. See columnar/codec/codec.h.
  std::string codec_chain;

  bool IsPlain() const {
    return delta_slots.empty() && dict_slots.empty() && !has_key_slot &&
           codec_chain.empty() && stored_schema == original_schema;
  }
};

// Creates metadata for a plain file of `schema` (identity field map).
SeqFileMeta PlainMeta(const Schema& schema);

class SeqFileWriter {
 public:
  struct Options {
    // Block size trades scan efficiency against locator-index
    // granularity: a block is the unit a B+Tree range scan must decode
    // to resolve one matching record.
    uint32_t target_block_bytes = 16 * 1024;
    // When non-zero, blocks are cut by record COUNT instead of bytes.
    // Column-group sibling files use this so their blocks stay
    // row-aligned and one split range is valid across all of them.
    uint32_t records_per_block = 0;
    // Block-stage codec chain (e.g. "mlz", "rle+mlz"; "" = raw
    // blocks). Non-empty forces the v2 on-disk format.
    std::string codec_chain;
    // Record per-block min/max skip frames for every i64-valued
    // stored slot (plain i64, delta, dictionary-code). Forces v2.
    bool skip_frames = false;
  };

  static Result<std::unique_ptr<SeqFileWriter>> Create(
      const std::string& path, SeqFileMeta meta, Options options);
  static Result<std::unique_ptr<SeqFileWriter>> Create(
      const std::string& path, SeqFileMeta meta) {
    return Create(path, std::move(meta), Options());
  }

  ~SeqFileWriter();

  // Required before Append iff meta.dict_slots is non-empty; the
  // caller owns the builder and saves it to meta.dict_path afterwards.
  void set_dict_builder(DictionaryBuilder* builder) {
    dict_builder_ = builder;
  }

  // Appends a record in STORED layout: one value per stored slot, with
  // dict slots still carrying their string values (encoding happens
  // here). `key` is the record's map() key; persisted only when
  // meta.has_key_slot.
  Status Append(int64_t key, const Record& stored_record);
  Status Append(const Record& stored_record) {
    return Append(num_records_, stored_record);
  }

  // Flushes the last block and the footer; returns total bytes.
  Result<uint64_t> Finish();

  uint64_t num_records() const { return num_records_; }

  // Total uncompressed block-body bytes appended so far — what the
  // file would weigh without the block codec chain. The catalog
  // records this next to the compressed artifact size so the cost
  // model can price bytes-decoded separately from bytes-scanned.
  uint64_t raw_body_bytes() const { return raw_body_bytes_; }

  // Locator of the most recently appended record (valid after the
  // first Append): index builders record these so a B+Tree can point
  // back into the file it is writing.
  uint64_t last_block() const { return last_block_; }
  uint32_t last_index_in_block() const { return last_index_in_block_; }

 private:
  // Out-of-line: members include unique_ptr<CodecChain>, and
  // CodecChain is only forward-declared here.
  SeqFileWriter(std::unique_ptr<WritableFile> file, SeqFileMeta meta,
                Options options);

  Status WriteHeader();
  Status FlushBlock();

  Options options_;
  SeqFileMeta meta_;
  std::unique_ptr<WritableFile> file_;
  DictionaryBuilder* dict_builder_ = nullptr;

  uint64_t offset_ = 0;
  std::string block_buf_;
  uint32_t block_records_ = 0;
  std::vector<int64_t> delta_prev_;  // per delta slot, reset each block
  std::vector<uint64_t> block_offsets_;
  std::vector<uint64_t> block_cum_records_;
  uint64_t num_records_ = 0;
  uint64_t raw_body_bytes_ = 0;
  uint64_t last_block_ = 0;
  uint32_t last_index_in_block_ = 0;

  // ---- v2 state ----
  bool v2_ = false;
  std::unique_ptr<CodecChain> chain_;  // null when codec_chain is ""
  std::vector<int> frame_slots_;       // stored slots with skip frames
  std::vector<int> slot_frame_index_;  // stored slot -> frame idx | -1
  std::vector<int64_t> block_min_, block_max_;  // current block, per frame
  std::vector<int64_t> frames_;  // flushed: block-major (min,max) pairs
};

class SeqFileReader
    : public std::enable_shared_from_this<SeqFileReader> {
 public:
  static Result<std::shared_ptr<SeqFileReader>> Open(
      const std::string& path);

  const SeqFileMeta& meta() const { return meta_; }
  uint64_t num_blocks() const { return block_offsets_.size(); }
  uint64_t file_size() const { return file_size_; }
  const std::string& path() const { return path_; }
  uint64_t num_records() const { return num_records_; }
  uint32_t version() const { return version_; }

  // ---- skip frames (v2, docs: DESIGN.md "Codec framework") ----
  // Per-block [min, max] bounds of every i64-valued stored slot. A
  // block whose bounds prove the scan predicate false for every row
  // can be skipped without being read or decompressed.
  bool has_skip_frames() const { return !frame_slots_.empty(); }
  const std::vector<int>& frame_slots() const { return frame_slots_; }
  // Bounds of stored slot `slot` within `block`; false when the slot
  // has no frame.
  bool BlockSlotBounds(uint64_t block, int slot, int64_t* min,
                       int64_t* max) const;
  // Records stored in `block` (from the footer's cumulative counts).
  uint64_t BlockRecordCount(uint64_t block) const;

  // Mean on-disk block body size, from the footer's recorded offsets.
  // The cost model uses this to price locator-resolved block touches
  // against the file as actually written (blocks can be far from the
  // writer's target_block_bytes when single records are large).
  double average_block_bytes() const {
    if (block_sizes_.empty()) return 0;
    uint64_t total = 0;
    for (uint64_t s : block_sizes_) total += s;
    return static_cast<double>(total) /
           static_cast<double>(block_sizes_.size());
  }

  // Streams records of a contiguous block range [begin, end).
  // Dict-encoded slots surface as i64 codes (direct operation); use
  // the dictionary sidecar to decode when string values are needed.
  class RecordStream {
   public:
    // Returns true and fills *key / *record while records remain. The
    // key is the persisted one (has_key_slot) or the global ordinal.
    Result<bool> Next(int64_t* key, Record* record);
    Result<bool> Next(Record* record) {
      int64_t ignored = 0;
      return Next(&ignored, record);
    }

    uint64_t bytes_read() const { return bytes_read_; }
    // Uncompressed block-body bytes materialized so far. Equals the
    // raw body size of every block actually loaded; skipped blocks
    // contribute nothing (the point of direct evaluation).
    uint64_t bytes_decoded() const { return bytes_decoded_; }
    uint64_t blocks_skipped() const { return blocks_skipped_; }
    uint64_t records_skipped() const { return records_skipped_; }

    // Installs a block-skip bitmap (index = absolute block number;
    // true = provably no row matches, do not read or decode). Built
    // by the scan plan from the skip frames + the admitted predicate.
    void set_skip_blocks(std::shared_ptr<const std::vector<bool>> skip) {
      skip_blocks_ = std::move(skip);
    }

    // Opt-in zero-copy decode: str fields in records returned by
    // Next() become Value::Borrowed views into the stream's block
    // buffer instead of heap copies. The views stay valid until the
    // next Next() call (which may replace the buffer when it crosses a
    // block boundary), so the caller must finish with — or ToOwned() —
    // each record before advancing. Off by default.
    void set_borrow_strings(bool b) { borrow_strings_ = b; }

    // Position of the record most recently returned by Next() —
    // the locator an index can later resolve via BlockAccessor.
    uint64_t current_block() const { return next_block_ - 1; }
    uint32_t current_index_in_block() const { return record_in_block_ - 1; }

   private:
    friend class SeqFileReader;
    RecordStream(std::shared_ptr<const SeqFileReader> reader,
                 std::unique_ptr<RandomAccessFile> file,
                 uint64_t begin_block, uint64_t end_block)
        : reader_(std::move(reader)),
          file_(std::move(file)),
          next_block_(begin_block),
          end_block_(end_block) {}

    Status LoadNextBlock();

    std::shared_ptr<const SeqFileReader> reader_;
    std::unique_ptr<RandomAccessFile> file_;
    uint64_t next_block_;
    uint64_t end_block_;
    std::string block_data_;
    std::string_view cursor_;
    uint32_t remaining_ = 0;
    uint32_t record_in_block_ = 0;
    std::vector<int64_t> delta_prev_;
    uint64_t bytes_read_ = 0;
    uint64_t bytes_decoded_ = 0;
    uint64_t blocks_skipped_ = 0;
    uint64_t records_skipped_ = 0;
    int64_t next_ordinal_ = 0;  // synthesized key counter
    bool borrow_strings_ = false;
    std::shared_ptr<const std::vector<bool>> skip_blocks_;
  };

  // Opens a dedicated file handle for the stream (thread safe across
  // streams).
  Result<RecordStream> Scan(uint64_t begin_block, uint64_t end_block) const;
  Result<RecordStream> ScanAll() const { return Scan(0, num_blocks()); }

  // Locator-based access: decodes one whole block at a time and serves
  // records by in-block index. B+Tree range scans resolve their
  // (block, index) payloads through this; visiting locators in file
  // order makes each block decode at most once.
  class BlockAccessor {
   public:
    // Loads (and caches) block `b`.
    Status Load(uint64_t block);

    uint64_t loaded_block() const { return loaded_block_; }
    const SeqFileMeta& reader_meta() const { return reader_->meta(); }
    size_t num_records() const { return records_.size(); }
    const Record& record(uint32_t index) const {
      return records_.at(index);
    }
    int64_t key(uint32_t index) const { return keys_.at(index); }
    uint64_t bytes_read() const { return bytes_read_; }
    uint64_t bytes_decoded() const { return bytes_decoded_; }

   private:
    friend class SeqFileReader;
    BlockAccessor(std::shared_ptr<const SeqFileReader> reader,
                  std::unique_ptr<RandomAccessFile> file)
        : reader_(std::move(reader)), file_(std::move(file)) {}

    std::shared_ptr<const SeqFileReader> reader_;
    std::unique_ptr<RandomAccessFile> file_;
    uint64_t loaded_block_ = UINT64_MAX;
    std::vector<Record> records_;
    std::vector<int64_t> keys_;
    uint64_t bytes_read_ = 0;
    uint64_t bytes_decoded_ = 0;
  };

  Result<BlockAccessor> OpenBlockAccessor() const;

 private:
  SeqFileReader() = default;

  Status Init(const std::string& path);

  // Decodes one stored record from *in. With `borrow_strings`, str
  // fields are views into *in's backing buffer (see RecordStream::
  // set_borrow_strings for the lifetime contract).
  Status DecodeStored(std::string_view* in,
                      std::vector<int64_t>* delta_prev, Record* out,
                      bool borrow_strings = false) const;

  // Reads block `b` and materializes its raw (decompressed) body into
  // *body. v2 bodies are codec-framed: an unregistered method byte or
  // a raw-size mismatch is a Corruption, never silent garbage.
  Status ReadBlockBody(RandomAccessFile* file, uint64_t block,
                       std::string* body, uint64_t* bytes_read,
                       uint64_t* bytes_decoded) const;

  std::string path_;
  SeqFileMeta meta_;
  uint32_t version_ = 1;
  std::vector<uint64_t> block_offsets_;
  std::vector<uint64_t> block_sizes_;
  // Records preceding each block (for ordinal-key synthesis on raw
  // files).
  std::vector<uint64_t> block_cum_records_;
  uint64_t file_size_ = 0;
  uint64_t num_records_ = 0;
  std::vector<bool> is_delta_slot_;
  std::vector<bool> is_dict_slot_;
  // v2 skip frames: block-major (min, max) per frame slot.
  std::vector<int> frame_slots_;
  std::vector<int64_t> frames_;
};

}  // namespace manimal::columnar

#endif  // MANIMAL_COLUMNAR_SEQFILE_H_
