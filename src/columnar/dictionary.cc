#include "columnar/dictionary.h"

#include "common/coding.h"
#include "common/env.h"
#include "common/strings.h"

namespace manimal::columnar {

namespace {
constexpr char kMagic[4] = {'M', 'D', 'I', 'C'};
}  // namespace

int64_t DictionaryBuilder::EncodeOrAdd(std::string_view s) {
  auto it = codes_.find(std::string(s));
  if (it != codes_.end()) return it->second;
  int64_t code = static_cast<int64_t>(strings_.size());
  strings_.emplace_back(s);
  codes_.emplace(strings_.back(), code);
  return code;
}

Status DictionaryBuilder::Save(const std::string& path) const {
  std::string out(kMagic, 4);
  PutVarint64(&out, strings_.size());
  for (const std::string& s : strings_) PutLengthPrefixed(&out, s);
  return WriteStringToFile(path, out);
}

Result<Dictionary> Dictionary::Load(const std::string& path) {
  MANIMAL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  std::string_view in = data;
  if (in.size() < 4 || in.substr(0, 4) != std::string_view(kMagic, 4)) {
    return Status::Corruption("bad dictionary magic in " + path);
  }
  in.remove_prefix(4);
  uint64_t count = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint64(&in, &count));
  Dictionary dict;
  dict.strings_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view s;
    MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&in, &s));
    dict.strings_.emplace_back(s);
    dict.codes_.emplace(dict.strings_.back(), static_cast<int64_t>(i));
  }
  return dict;
}

std::optional<int64_t> Dictionary::Encode(std::string_view s) const {
  auto it = codes_.find(std::string(s));
  if (it == codes_.end()) return std::nullopt;
  return it->second;
}

Result<std::string> Dictionary::Decode(int64_t code) const {
  if (code < 0 || code >= size()) {
    return Status::OutOfRange(
        StrPrintf("dictionary code %lld out of range",
                  static_cast<long long>(code)));
  }
  return strings_[code];
}

}  // namespace manimal::columnar
