#include "serde/key_codec.h"

#include <cstring>

#include "common/status.h"

namespace manimal {

namespace {

// Kind-rank prefix bytes; must mirror Value::Compare's kind ranking
// (numerics share one rank).
constexpr char kRankNull = 0x01;
constexpr char kRankBool = 0x02;
constexpr char kRankNumeric = 0x03;
constexpr char kRankStr = 0x04;

void AppendBigEndian64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  dst->append(buf, 8);
}

uint64_t ReadBigEndian64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

// IEEE-754 total-order transform: monotone map double -> uint64.
uint64_t DoubleToOrdered(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  if (bits & (1ULL << 63)) {
    return ~bits;  // negative: flip everything
  }
  return bits | (1ULL << 63);  // non-negative: flip the sign bit
}

double OrderedToDouble(uint64_t u) {
  uint64_t bits;
  if (u & (1ULL << 63)) {
    bits = u & ~(1ULL << 63);
  } else {
    bits = ~u;
  }
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

}  // namespace

Status EncodeOrderedKey(const Value& value, std::string* dst) {
  switch (value.kind()) {
    case ValueKind::kNull:
      dst->push_back(kRankNull);
      return Status::OK();
    case ValueKind::kBool:
      dst->push_back(kRankBool);
      dst->push_back(value.bool_value() ? 1 : 0);
      return Status::OK();
    case ValueKind::kI64: {
      // Exact i64 keys keep full precision: encode as numeric rank,
      // sub-tag 0 for "integer", sign-flipped big endian. Doubles use
      // sub-tag ordering chosen so memcmp order == numeric order only
      // if files don't mix i64 and f64 keys for the same field; the
      // row codec types each field, so a field is always one of the
      // two.
      dst->push_back(kRankNumeric);
      AppendBigEndian64(dst, static_cast<uint64_t>(value.i64()) ^
                                 (1ULL << 63));
      dst->push_back(0);  // integer marker (distinguishes on decode)
      return Status::OK();
    }
    case ValueKind::kF64: {
      dst->push_back(kRankNumeric);
      AppendBigEndian64(dst, DoubleToOrdered(value.f64()));
      dst->push_back(1);  // double marker
      return Status::OK();
    }
    case ValueKind::kStr:
      dst->push_back(kRankStr);
      dst->append(value.str());
      return Status::OK();
    case ValueKind::kList:
    case ValueKind::kHandle:
      return Status::NotSupported("only scalar values can be index keys");
  }
  return Status::Internal("bad value kind");
}

Status DecodeOrderedKey(std::string_view input, Value* value) {
  if (input.empty()) return Status::Corruption("empty ordered key");
  char rank = input[0];
  input.remove_prefix(1);
  switch (rank) {
    case kRankNull:
      *value = Value::Null();
      return Status::OK();
    case kRankBool:
      if (input.size() != 1) return Status::Corruption("bad bool key");
      *value = Value::Bool(input[0] != 0);
      return Status::OK();
    case kRankNumeric: {
      if (input.size() != 9) return Status::Corruption("bad numeric key");
      uint64_t raw = ReadBigEndian64(input.data());
      char marker = input[8];
      if (marker == 0) {
        *value = Value::I64(static_cast<int64_t>(raw ^ (1ULL << 63)));
      } else {
        *value = Value::F64(OrderedToDouble(raw));
      }
      return Status::OK();
    }
    case kRankStr:
      *value = Value::Str(std::string(input));
      return Status::OK();
    default:
      return Status::Corruption("bad ordered key rank byte");
  }
}

}  // namespace manimal
