// Record schemas. A schema is the "declared type" of the serialized
// (key, value) objects in a data file — the information the Manimal
// analyzer mines to enumerate fields for projection and to find numeric
// fields for delta-compression (paper §2.2: "The code that serializes
// and deserializes these classes effectively declares the file's
// schema").
//
// A schema may instead be *opaque*: a single uninterpreted byte blob.
// This models Pavlo Benchmark 1's custom AbstractTuple serialization,
// which carries "no direct program-specific clues" — the analyzer can
// see the blob but cannot distinguish fields inside it (Table 1's two
// Undetected cells).

#ifndef MANIMAL_SERDE_SCHEMA_H_
#define MANIMAL_SERDE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "serde/value.h"

namespace manimal {

enum class FieldType : uint8_t {
  kI64 = 0,
  kF64 = 1,
  kStr = 2,
  kBool = 3,
};

const char* FieldTypeName(FieldType t);
bool FieldTypeIsNumeric(FieldType t);

struct Field {
  std::string name;
  FieldType type;

  bool operator==(const Field& other) const = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  // A schema whose contents are a single uninterpreted blob (custom
  // user serialization the analyzer cannot see into).
  static Schema Opaque() {
    Schema s;
    s.opaque_ = true;
    return s;
  }

  bool opaque() const { return opaque_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }
  const std::vector<Field>& fields() const { return fields_; }
  const Field& field(int i) const { return fields_.at(i); }

  // Index of the named field, or nullopt.
  std::optional<int> FieldIndex(std::string_view name) const;

  // Indexes of numeric (i64/f64) fields — the delta-compression
  // candidates (paper Appendix C).
  std::vector<int> NumericFieldIndexes() const;

  bool operator==(const Schema& other) const {
    return opaque_ == other.opaque_ && fields_ == other.fields_;
  }

  // Compact single-line form, e.g. "url:str,rank:i64,content:str" or
  // "<opaque>"; Parse() inverts it.
  std::string ToString() const;
  static Result<Schema> Parse(std::string_view text);

  // Schema restricted to the given field indexes (used by projection).
  Schema Project(const std::vector<int>& keep) const;

 private:
  bool opaque_ = false;
  std::vector<Field> fields_;
};

// A record is a vector of Values matching a Schema positionally.
using Record = ValueList;

// Checks that `record` conforms to `schema` (arity and per-field kind).
Status ValidateRecord(const Schema& schema, const Record& record);

}  // namespace manimal

#endif  // MANIMAL_SERDE_SCHEMA_H_
