#include "serde/record_codec.h"

#include "common/coding.h"
#include "common/strings.h"

namespace manimal {

Status EncodeRecord(const Schema& schema, const Record& record,
                    std::string* dst) {
  MANIMAL_RETURN_IF_ERROR(ValidateRecord(schema, record));
  if (schema.opaque()) {
    PutLengthPrefixed(dst, record[0].str());
    return Status::OK();
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    const Value& v = record[i];
    switch (schema.field(i).type) {
      case FieldType::kI64:
        PutVarintSigned(dst, v.i64());
        break;
      case FieldType::kF64:
        PutDouble(dst, v.f64());
        break;
      case FieldType::kStr:
        PutLengthPrefixed(dst, v.str());
        break;
      case FieldType::kBool:
        dst->push_back(v.bool_value() ? 1 : 0);
        break;
    }
  }
  return Status::OK();
}

Status DecodeRecord(const Schema& schema, std::string_view* input,
                    Record* record, bool borrow_strings) {
  record->clear();
  if (schema.opaque()) {
    std::string_view blob;
    MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(input, &blob));
    record->push_back(borrow_strings ? Value::Borrowed(blob)
                                     : Value::Str(blob));
    return Status::OK();
  }
  record->reserve(schema.num_fields());
  for (int i = 0; i < schema.num_fields(); ++i) {
    switch (schema.field(i).type) {
      case FieldType::kI64: {
        int64_t v = 0;
        MANIMAL_RETURN_IF_ERROR(GetVarintSigned(input, &v));
        record->push_back(Value::I64(v));
        break;
      }
      case FieldType::kF64: {
        double v = 0;
        MANIMAL_RETURN_IF_ERROR(GetDouble(input, &v));
        record->push_back(Value::F64(v));
        break;
      }
      case FieldType::kStr: {
        std::string_view s;
        MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(input, &s));
        record->push_back(borrow_strings ? Value::Borrowed(s)
                                         : Value::Str(s));
        break;
      }
      case FieldType::kBool: {
        if (input->empty()) return Status::Corruption("truncated bool");
        record->push_back(Value::Bool((*input)[0] != 0));
        input->remove_prefix(1);
        break;
      }
    }
  }
  return Status::OK();
}

Status EncodeValue(const Value& value, std::string* dst) {
  dst->push_back(static_cast<char>(value.kind()));
  switch (value.kind()) {
    case ValueKind::kNull:
      return Status::OK();
    case ValueKind::kBool:
      dst->push_back(value.bool_value() ? 1 : 0);
      return Status::OK();
    case ValueKind::kI64:
      PutVarintSigned(dst, value.i64());
      return Status::OK();
    case ValueKind::kF64:
      PutDouble(dst, value.f64());
      return Status::OK();
    case ValueKind::kStr:
      PutLengthPrefixed(dst, value.str());
      return Status::OK();
    case ValueKind::kList: {
      PutVarint64(dst, value.list().size());
      for (const Value& item : value.list()) {
        MANIMAL_RETURN_IF_ERROR(EncodeValue(item, dst));
      }
      return Status::OK();
    }
    case ValueKind::kHandle:
      return Status::NotSupported("cannot serialize handle values");
  }
  return Status::Internal("bad value kind");
}

Status DecodeValue(std::string_view* input, Value* value) {
  if (input->empty()) return Status::Corruption("truncated value");
  auto kind = static_cast<ValueKind>((*input)[0]);
  input->remove_prefix(1);
  switch (kind) {
    case ValueKind::kNull:
      *value = Value::Null();
      return Status::OK();
    case ValueKind::kBool: {
      if (input->empty()) return Status::Corruption("truncated bool");
      *value = Value::Bool((*input)[0] != 0);
      input->remove_prefix(1);
      return Status::OK();
    }
    case ValueKind::kI64: {
      int64_t v = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarintSigned(input, &v));
      *value = Value::I64(v);
      return Status::OK();
    }
    case ValueKind::kF64: {
      double v = 0;
      MANIMAL_RETURN_IF_ERROR(GetDouble(input, &v));
      *value = Value::F64(v);
      return Status::OK();
    }
    case ValueKind::kStr: {
      std::string_view s;
      MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(input, &s));
      *value = Value::Str(std::string(s));
      return Status::OK();
    }
    case ValueKind::kList: {
      uint64_t n = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarint64(input, &n));
      ValueList items;
      items.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        Value item;
        MANIMAL_RETURN_IF_ERROR(DecodeValue(input, &item));
        items.push_back(std::move(item));
      }
      *value = Value::List(std::move(items));
      return Status::OK();
    }
    case ValueKind::kHandle:
      return Status::Corruption("handle value in serialized stream");
  }
  return Status::Corruption("bad value kind byte");
}

// --- OpaqueTupleCodec -------------------------------------------------
//
// Format (deliberately custom; nothing in the file schema describes
// it): 'A' 'T' magic, varint field count, then per field a type byte
// ('i', 'd', 's', 'b') and the value.

namespace {
constexpr char kMagic0 = 'A';
constexpr char kMagic1 = 'T';
}  // namespace

Result<std::string> OpaqueTupleCodec::Pack(const Record& tuple) {
  std::string out;
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  PutVarint64(&out, tuple.size());
  for (const Value& v : tuple) {
    switch (v.kind()) {
      case ValueKind::kI64:
        out.push_back('i');
        PutVarintSigned(&out, v.i64());
        break;
      case ValueKind::kF64:
        out.push_back('d');
        PutDouble(&out, v.f64());
        break;
      case ValueKind::kStr:
        out.push_back('s');
        PutLengthPrefixed(&out, v.str());
        break;
      case ValueKind::kBool:
        out.push_back('b');
        out.push_back(v.bool_value() ? 1 : 0);
        break;
      default:
        return Status::InvalidArgument(
            "opaque tuple fields must be scalars, got " +
            std::string(ValueKindName(v.kind())));
    }
  }
  return out;
}

namespace {

Status SkipOrReadOpaqueField(std::string_view* in, Value* out) {
  if (in->empty()) return Status::Corruption("truncated opaque tuple");
  char tag = (*in)[0];
  in->remove_prefix(1);
  switch (tag) {
    case 'i': {
      int64_t v = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarintSigned(in, &v));
      if (out) *out = Value::I64(v);
      return Status::OK();
    }
    case 'd': {
      double v = 0;
      MANIMAL_RETURN_IF_ERROR(GetDouble(in, &v));
      if (out) *out = Value::F64(v);
      return Status::OK();
    }
    case 's': {
      std::string_view s;
      MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(in, &s));
      if (out) *out = Value::Str(std::string(s));
      return Status::OK();
    }
    case 'b': {
      if (in->empty()) return Status::Corruption("truncated opaque bool");
      if (out) *out = Value::Bool((*in)[0] != 0);
      in->remove_prefix(1);
      return Status::OK();
    }
    default:
      return Status::Corruption("bad opaque tuple tag");
  }
}

Status CheckOpaqueHeader(std::string_view* in, uint64_t* count) {
  if (in->size() < 2 || (*in)[0] != kMagic0 || (*in)[1] != kMagic1) {
    return Status::Corruption("bad opaque tuple magic");
  }
  in->remove_prefix(2);
  return GetVarint64(in, count);
}

}  // namespace

Result<Record> OpaqueTupleCodec::Unpack(std::string_view blob) {
  uint64_t count = 0;
  MANIMAL_RETURN_IF_ERROR(CheckOpaqueHeader(&blob, &count));
  Record out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Value v;
    MANIMAL_RETURN_IF_ERROR(SkipOrReadOpaqueField(&blob, &v));
    out.push_back(std::move(v));
  }
  return out;
}

Result<Value> OpaqueTupleCodec::GetField(std::string_view blob, int index) {
  uint64_t count = 0;
  MANIMAL_RETURN_IF_ERROR(CheckOpaqueHeader(&blob, &count));
  if (index < 0 || static_cast<uint64_t>(index) >= count) {
    return Status::OutOfRange(
        StrPrintf("opaque tuple index %d out of range (%llu fields)", index,
                  static_cast<unsigned long long>(count)));
  }
  for (int i = 0; i < index; ++i) {
    MANIMAL_RETURN_IF_ERROR(SkipOrReadOpaqueField(&blob, nullptr));
  }
  Value v;
  MANIMAL_RETURN_IF_ERROR(SkipOrReadOpaqueField(&blob, &v));
  return v;
}

Result<int> OpaqueTupleCodec::NumFields(std::string_view blob) {
  uint64_t count = 0;
  MANIMAL_RETURN_IF_ERROR(CheckOpaqueHeader(&blob, &count));
  return static_cast<int>(count);
}

}  // namespace manimal
