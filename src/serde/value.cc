#include "serde/value.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/strings.h"

namespace manimal {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kI64:
      return "i64";
    case ValueKind::kF64:
      return "f64";
    case ValueKind::kStr:
      return "str";
    case ValueKind::kList:
      return "list";
    case ValueKind::kHandle:
      return "handle";
  }
  return "?";
}

void Value::CopyRefcounted(const Value& other) {
  switch (tag_) {
    case Tag::kOwnedStr:
      new (&rep_.owned) std::shared_ptr<std::string>(other.rep_.owned);
      break;
    case Tag::kList:
      new (&rep_.list) std::shared_ptr<ValueList>(other.rep_.list);
      break;
    case Tag::kHandle:
      new (&rep_.handle) std::shared_ptr<ObjectHandle>(other.rep_.handle);
      break;
    default:
      MANIMAL_CHECK(false);
  }
}

void Value::DestroyRefcounted() {
  switch (tag_) {
    case Tag::kOwnedStr:
      rep_.owned.~shared_ptr();
      break;
    case Tag::kList:
      rep_.list.~shared_ptr();
      break;
    case Tag::kHandle:
      rep_.handle.~shared_ptr();
      break;
    default:
      MANIMAL_CHECK(false);
  }
}

void Value::AssignSlow(const Value& other) {
  // Copy-then-destroy so self-referential assignments (e.g. from an
  // element of this value's own list) stay safe.
  Value copy(other);
  if (!is_trivial_tag(tag_)) DestroyRefcounted();
  tag_ = copy.tag_;
  CopyRepBytes(&rep_, &copy.rep_);
  copy.tag_ = Tag::kNull;
}

bool Value::bool_value() const {
  MANIMAL_CHECK(is_bool());
  return rep_.b;
}

int64_t Value::i64() const {
  MANIMAL_CHECK(is_i64());
  return rep_.i;
}

double Value::f64() const {
  MANIMAL_CHECK(is_f64());
  return rep_.d;
}

std::string_view Value::str() const {
  switch (tag_) {
    case Tag::kInlineStr:
      return rep_.inl.view();
    case Tag::kViewStr:
      return {rep_.view.data, rep_.view.size};
    case Tag::kOwnedStr:
      return *rep_.owned;
    default:
      MANIMAL_CHECK(is_str());
      return {};
  }
}

const ValueList& Value::list() const {
  MANIMAL_CHECK(is_list());
  return *rep_.list;
}

ValueList& Value::mutable_list() {
  MANIMAL_CHECK(is_list());
  return *rep_.list;
}

bool Value::has_unique_list() const {
  if (!is_list()) return false;
  return rep_.list.use_count() == 1;
}

const std::shared_ptr<ObjectHandle>& Value::handle() const {
  MANIMAL_CHECK(is_handle());
  return rep_.handle;
}

double Value::AsF64() const {
  if (is_i64()) return static_cast<double>(i64());
  MANIMAL_CHECK(is_f64());
  return f64();
}

bool Value::HasBorrowedStr() const {
  if (is_borrowed_str()) return true;
  if (is_list()) {
    for (const Value& v : list()) {
      if (v.HasBorrowedStr()) return true;
    }
  }
  return false;
}

void Value::EnsureOwned() {
  if (tag_ == Tag::kViewStr) {
    // Borrowed strings longer than the inline cap (short borrows are
    // stored inline at construction).
    auto owned = std::make_shared<std::string>(
        std::string_view(rep_.view.data, rep_.view.size));
    tag_ = Tag::kOwnedStr;
    new (&rep_.owned) std::shared_ptr<std::string>(std::move(owned));
    return;
  }
  if (is_list() && HasBorrowedStr()) {
    // Rebuild rather than mutate: the list storage may be shared, and
    // other holders must not observe the rewrite.
    ValueList owned;
    const ValueList& items = list();
    owned.reserve(items.size());
    for (const Value& v : items) owned.push_back(v.ToOwned());
    rep_.list = std::make_shared<ValueList>(std::move(owned));
  }
}

Value SubstrValue(const Value& base, size_t pos, size_t len) {
  std::string_view s = base.str();
  pos = std::min(pos, s.size());
  std::string_view sub = s.substr(pos, len);
  if (base.is_borrowed_str()) return Value::Borrowed(sub);
  return Value::Str(sub);
}

namespace {

int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kI64:
    case ValueKind::kF64:
      return 2;  // numerics compare with each other
    case ValueKind::kStr:
      return 3;
    case ValueKind::kList:
      return 4;
    case ValueKind::kHandle:
      return 5;
  }
  return 6;
}

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = KindRank(kind());
  int rb = KindRank(other.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return Cmp3(bool_value(), other.bool_value());
    case ValueKind::kI64:
    case ValueKind::kF64: {
      if (is_i64() && other.is_i64()) return Cmp3(i64(), other.i64());
      return Cmp3(AsF64(), other.AsF64());
    }
    case ValueKind::kStr: {
      int c = str().compare(other.str());
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
    case ValueKind::kList: {
      const auto& a = list();
      const auto& b = other.list();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return Cmp3(a.size(), b.size());
    }
    case ValueKind::kHandle:
      return Cmp3(reinterpret_cast<uintptr_t>(handle().get()),
                  reinterpret_cast<uintptr_t>(other.handle().get()));
  }
  return 0;
}

uint64_t Value::Hash() const {
  // FNV-1a over a kind tag plus the canonical byte representation.
  auto mix = [](uint64_t h, uint64_t x) {
    h ^= x;
    h *= 0x100000001B3ULL;
    return h;
  };
  uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, static_cast<uint64_t>(KindRank(kind())));
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      h = mix(h, bool_value() ? 1 : 0);
      break;
    case ValueKind::kI64:
      h = mix(h, static_cast<uint64_t>(i64()));
      break;
    case ValueKind::kF64: {
      double d = f64();
      if (d == static_cast<int64_t>(d)) {
        // Hash integral doubles like their i64 twin so Compare==0
        // implies equal hashes.
        h = mix(h, static_cast<uint64_t>(static_cast<int64_t>(d)));
      } else {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, 8);
        h = mix(h, bits);
      }
      break;
    }
    case ValueKind::kStr:
      for (char c : str()) h = mix(h, static_cast<uint8_t>(c));
      break;
    case ValueKind::kList:
      for (const Value& v : list()) h = mix(h, v.Hash());
      break;
    case ValueKind::kHandle:
      h = mix(h, reinterpret_cast<uintptr_t>(handle().get()));
      break;
  }
  return h;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return bool_value() ? "true" : "false";
    case ValueKind::kI64:
      return StrPrintf("i64:%lld", static_cast<long long>(i64()));
    case ValueKind::kF64:
      return StrPrintf("f64:%.17g", f64());
    case ValueKind::kStr:
      return "str:\"" + std::string(str()) + "\"";
    case ValueKind::kList: {
      std::string out = "list:[";
      const auto& items = list();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      return out;
    }
    case ValueKind::kHandle:
      return "handle:" + handle()->TypeName();
  }
  return "?";
}

char* ValueArena::Alloc(size_t n) {
  if (n == 0) {
    static char dummy;
    return &dummy;
  }
  while (block_ < blocks_.size()) {
    if (block_bytes_[block_] - used_ >= n) {
      char* p = blocks_[block_].get() + used_;
      used_ += n;
      return p;
    }
    ++block_;
    used_ = 0;
  }
  size_t want = std::max(n, kMinBlockBytes);
  if (!block_bytes_.empty()) {
    want = std::max(want, block_bytes_.back() * 2);
  }
  blocks_.push_back(std::make_unique<char[]>(want));
  block_bytes_.push_back(want);
  block_ = blocks_.size() - 1;
  used_ = n;
  return blocks_[block_].get();
}

size_t ValueArena::allocated_bytes() const {
  size_t total = 0;
  for (size_t b : block_bytes_) total += b;
  return total;
}

}  // namespace manimal
