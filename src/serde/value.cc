#include "serde/value.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/strings.h"

namespace manimal {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kI64:
      return "i64";
    case ValueKind::kF64:
      return "f64";
    case ValueKind::kStr:
      return "str";
    case ValueKind::kList:
      return "list";
    case ValueKind::kHandle:
      return "handle";
  }
  return "?";
}

ValueKind Value::kind() const {
  return static_cast<ValueKind>(rep_.index());
}

bool Value::bool_value() const {
  MANIMAL_CHECK(is_bool());
  return std::get<bool>(rep_);
}

int64_t Value::i64() const {
  MANIMAL_CHECK(is_i64());
  return std::get<int64_t>(rep_);
}

double Value::f64() const {
  MANIMAL_CHECK(is_f64());
  return std::get<double>(rep_);
}

const std::string& Value::str() const {
  MANIMAL_CHECK(is_str());
  return *std::get<std::shared_ptr<std::string>>(rep_);
}

const ValueList& Value::list() const {
  MANIMAL_CHECK(is_list());
  return *std::get<std::shared_ptr<ValueList>>(rep_);
}

ValueList& Value::mutable_list() {
  MANIMAL_CHECK(is_list());
  return *std::get<std::shared_ptr<ValueList>>(rep_);
}

const std::shared_ptr<ObjectHandle>& Value::handle() const {
  MANIMAL_CHECK(is_handle());
  return std::get<std::shared_ptr<ObjectHandle>>(rep_);
}

double Value::AsF64() const {
  if (is_i64()) return static_cast<double>(i64());
  MANIMAL_CHECK(is_f64());
  return f64();
}

namespace {

int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kI64:
    case ValueKind::kF64:
      return 2;  // numerics compare with each other
    case ValueKind::kStr:
      return 3;
    case ValueKind::kList:
      return 4;
    case ValueKind::kHandle:
      return 5;
  }
  return 6;
}

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = KindRank(kind());
  int rb = KindRank(other.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return Cmp3(bool_value(), other.bool_value());
    case ValueKind::kI64:
    case ValueKind::kF64: {
      if (is_i64() && other.is_i64()) return Cmp3(i64(), other.i64());
      return Cmp3(AsF64(), other.AsF64());
    }
    case ValueKind::kStr:
      return str().compare(other.str()) < 0
                 ? -1
                 : (str() == other.str() ? 0 : 1);
    case ValueKind::kList: {
      const auto& a = list();
      const auto& b = other.list();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return Cmp3(a.size(), b.size());
    }
    case ValueKind::kHandle:
      return Cmp3(reinterpret_cast<uintptr_t>(handle().get()),
                  reinterpret_cast<uintptr_t>(other.handle().get()));
  }
  return 0;
}

uint64_t Value::Hash() const {
  // FNV-1a over a kind tag plus the canonical byte representation.
  auto mix = [](uint64_t h, uint64_t x) {
    h ^= x;
    h *= 0x100000001B3ULL;
    return h;
  };
  uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, static_cast<uint64_t>(KindRank(kind())));
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      h = mix(h, bool_value() ? 1 : 0);
      break;
    case ValueKind::kI64:
      h = mix(h, static_cast<uint64_t>(i64()));
      break;
    case ValueKind::kF64: {
      double d = f64();
      if (d == static_cast<int64_t>(d)) {
        // Hash integral doubles like their i64 twin so Compare==0
        // implies equal hashes.
        h = mix(h, static_cast<uint64_t>(static_cast<int64_t>(d)));
      } else {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, 8);
        h = mix(h, bits);
      }
      break;
    }
    case ValueKind::kStr:
      for (char c : str()) h = mix(h, static_cast<uint8_t>(c));
      break;
    case ValueKind::kList:
      for (const Value& v : list()) h = mix(h, v.Hash());
      break;
    case ValueKind::kHandle:
      h = mix(h, reinterpret_cast<uintptr_t>(handle().get()));
      break;
  }
  return h;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return bool_value() ? "true" : "false";
    case ValueKind::kI64:
      return StrPrintf("i64:%lld", static_cast<long long>(i64()));
    case ValueKind::kF64:
      return StrPrintf("f64:%.17g", f64());
    case ValueKind::kStr:
      return "str:\"" + str() + "\"";
    case ValueKind::kList: {
      std::string out = "list:[";
      const auto& items = list();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      return out;
    }
    case ValueKind::kHandle:
      return "handle:" + handle()->TypeName();
  }
  return "?";
}

}  // namespace manimal
