// Binary row codec: encodes a Record against its Schema.
//
// Encoding per field: i64 -> zigzag varint, f64 -> fixed 8 bytes,
// str -> varint length + bytes, bool -> 1 byte. Opaque schemas encode
// the blob verbatim (varint length + bytes) — the on-disk bytes reveal
// nothing about internal structure, exactly like Benchmark 1's
// AbstractTuple.
//
// OpaqueTupleCodec packs a heterogeneous tuple *inside* such a blob
// using its own private format; user code reads it back at runtime via
// the `opaque.get_*` MRIL builtins, which the analyzer treats as
// functional black boxes.

#ifndef MANIMAL_SERDE_RECORD_CODEC_H_
#define MANIMAL_SERDE_RECORD_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "serde/schema.h"

namespace manimal {

// Appends the encoded record to *dst.
Status EncodeRecord(const Schema& schema, const Record& record,
                    std::string* dst);

// Consumes one record from the front of *input.
//
// With `borrow_strings`, decoded str fields are Value::Borrowed views
// into *input's backing buffer instead of copies: zero-copy, but the
// caller must guarantee the buffer outlives every use of the record
// (the seq-file scan path hands such records to exactly one VM
// invocation per record — see docs/mril.md "VM internals").
Status DecodeRecord(const Schema& schema, std::string_view* input,
                    Record* record, bool borrow_strings = false);

// Encodes/decodes a single standalone Value (used for shuffle pairs,
// whose key/value types are not schema-bound). Lists of scalars are
// supported; handles are not serializable.
Status EncodeValue(const Value& value, std::string* dst);
Status DecodeValue(std::string_view* input, Value* value);

// The AbstractTuple model: a custom, self-describing-but-unannotated
// serialization of a tuple into a blob string.
class OpaqueTupleCodec {
 public:
  // Only scalar values (bool/i64/f64/str) may appear in the tuple.
  static Result<std::string> Pack(const Record& tuple);
  static Result<Record> Unpack(std::string_view blob);

  // Random access used by the opaque.get_* builtins.
  static Result<Value> GetField(std::string_view blob, int index);
  static Result<int> NumFields(std::string_view blob);
};

}  // namespace manimal

#endif  // MANIMAL_SERDE_RECORD_CODEC_H_
