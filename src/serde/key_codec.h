// Memcomparable key encoding for the B+Tree and the shuffle's external
// sort: EncodeOrderedKey produces bytes whose lexicographic (memcmp)
// order matches Value::Compare order for scalar values, so sorters and
// index nodes never need to decode keys to compare them.
//
// Layout: 1 kind-rank byte, then
//   i64  -> 8 bytes big-endian with the sign bit flipped
//   f64  -> 8 bytes big-endian IEEE total-order transform (i64 values
//           are widened to f64 first so mixed numeric keys interleave
//           correctly, matching Value::Compare)
//   str  -> raw bytes (terminated by end-of-key; keys are stored
//           length-prefixed externally)
//   bool -> 1 byte
//   null -> nothing

#ifndef MANIMAL_SERDE_KEY_CODEC_H_
#define MANIMAL_SERDE_KEY_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "serde/value.h"

namespace manimal {

// Appends the ordered encoding of a scalar value to *dst. Lists and
// handles are rejected.
Status EncodeOrderedKey(const Value& value, std::string* dst);

// Inverse of EncodeOrderedKey; consumes the whole input.
Status DecodeOrderedKey(std::string_view input, Value* value);

}  // namespace manimal

#endif  // MANIMAL_SERDE_KEY_CODEC_H_
