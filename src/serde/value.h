// Runtime value model. A Value is what flows through the MRIL virtual
// machine, the shuffle, and the storage codecs: null, bool, int64,
// double, string, a list (reduce-side grouped values), or an opaque
// object handle (e.g. a Hashtable created by user code).

#ifndef MANIMAL_SERDE_VALUE_H_
#define MANIMAL_SERDE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace manimal {

enum class ValueKind : uint8_t {
  kNull = 0,
  kBool = 1,
  kI64 = 2,
  kF64 = 3,
  kStr = 4,
  kList = 5,
  kHandle = 6,
};

const char* ValueKindName(ValueKind kind);

class Value;
using ValueList = std::vector<Value>;

// Base for runtime-only objects referenced by kHandle values (the MRIL
// builtin library defines concrete subclasses, e.g. HashtableObject).
class ObjectHandle {
 public:
  virtual ~ObjectHandle() = default;
  virtual std::string TypeName() const = 0;
};

class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value I64(int64_t v) { return Value(Rep(v)); }
  static Value F64(double v) { return Value(Rep(v)); }
  static Value Str(std::string s) {
    return Value(Rep(std::make_shared<std::string>(std::move(s))));
  }
  static Value List(ValueList items) {
    return Value(Rep(std::make_shared<ValueList>(std::move(items))));
  }
  static Value Handle(std::shared_ptr<ObjectHandle> h) {
    return Value(Rep(std::move(h)));
  }

  ValueKind kind() const;

  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_i64() const { return kind() == ValueKind::kI64; }
  bool is_f64() const { return kind() == ValueKind::kF64; }
  bool is_str() const { return kind() == ValueKind::kStr; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_handle() const { return kind() == ValueKind::kHandle; }
  bool is_numeric() const { return is_i64() || is_f64(); }

  // Accessors; preconditions on kind are checked.
  bool bool_value() const;
  int64_t i64() const;
  double f64() const;
  const std::string& str() const;
  const ValueList& list() const;
  ValueList& mutable_list();
  const std::shared_ptr<ObjectHandle>& handle() const;

  // Numeric value as double (i64 or f64).
  double AsF64() const;

  // Total order across values: first by kind rank, then by value.
  // Numeric kinds (i64/f64) compare by numeric value so mixed-type
  // comparisons behave naturally. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  // Debug/round-trippable-for-scalars textual form, e.g. `i64:42`,
  // `str:"abc"`.
  std::string ToString() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double,
                           std::shared_ptr<std::string>,
                           std::shared_ptr<ValueList>,
                           std::shared_ptr<ObjectHandle>>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace manimal

#endif  // MANIMAL_SERDE_VALUE_H_
