// Runtime value model. A Value is what flows through the MRIL virtual
// machine, the shuffle, and the storage codecs: null, bool, int64,
// double, string, a list (reduce-side grouped values), or an opaque
// object handle (e.g. a Hashtable created by user code).
//
// Strings have three storage classes, invisible to kind():
//   inline    short strings (<= kInlineStrCap bytes) stored directly in
//             the Value — copying is a memcpy, never a heap allocation.
//   owned     longer strings in shared (refcounted) heap storage.
//   borrowed  a string_view into memory the Value does NOT own: a
//             decoded record's backing block, or a ValueArena. Copying
//             is trivial. The creator of a borrowed Value is
//             responsible for the backing buffer outliving every use;
//             anything that retains a Value past its backing buffer's
//             lifetime must call ToOwned()/EnsureOwned() first (the VM
//             does this for member stores, emits, and logs — see
//             docs/mril.md "VM internals").
//
// Representation: a hand-rolled tagged union, not std::variant. The
// interpreter's hot path is Value copies and moves; with the tag
// ordering below every non-refcounted representation (null, bool, i64,
// f64, inline string, borrowed view) copies as one 24-byte memcpy and
// a tag store, and *moves are bitwise relocations for every tag* —
// shared_ptr is trivially relocatable, so a move memcpys the bits and
// retags the source as null (no refcount traffic, no destructor).

#ifndef MANIMAL_SERDE_VALUE_H_
#define MANIMAL_SERDE_VALUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace manimal {

enum class ValueKind : uint8_t {
  kNull = 0,
  kBool = 1,
  kI64 = 2,
  kF64 = 3,
  kStr = 4,
  kList = 5,
  kHandle = 6,
};

const char* ValueKindName(ValueKind kind);

class Value;
using ValueList = std::vector<Value>;

// Largest string stored inline in a Value (chosen so the whole Value
// stays within 32 bytes).
inline constexpr size_t kInlineStrCap = 22;

// Base for runtime-only objects referenced by kHandle values (the MRIL
// builtin library defines concrete subclasses, e.g. HashtableObject).
class ObjectHandle {
 public:
  virtual ~ObjectHandle() = default;
  virtual std::string TypeName() const = 0;
};

class Value {
 public:
  Value() : tag_(Tag::kNull) {}

  Value(const Value& other) : tag_(other.tag_) {
    if (is_trivial_tag(tag_)) {
      CopyRepBytes(&rep_, &other.rep_);
    } else {
      CopyRefcounted(other);
    }
  }

  // Moves relocate: shared_ptr's bits are memcpy-safe to move as long
  // as exactly one of source/destination remains live, which retagging
  // the source as null guarantees.
  Value(Value&& other) noexcept : tag_(other.tag_) {
    CopyRepBytes(&rep_, &other.rep_);
    other.tag_ = Tag::kNull;
  }

  Value& operator=(const Value& other) {
    if (this == &other) return *this;
    if (is_trivial_tag(tag_) && is_trivial_tag(other.tag_)) {
      tag_ = other.tag_;
      CopyRepBytes(&rep_, &other.rep_);
      return *this;
    }
    AssignSlow(other);
    return *this;
  }

  Value& operator=(Value&& other) noexcept {
    if (this == &other) return *this;
    if (!is_trivial_tag(tag_)) DestroyRefcounted();
    tag_ = other.tag_;
    CopyRepBytes(&rep_, &other.rep_);
    other.tag_ = Tag::kNull;
    return *this;
  }

  ~Value() {
    if (!is_trivial_tag(tag_)) DestroyRefcounted();
  }

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v(Tag::kBool);
    v.rep_.b = b;
    return v;
  }
  static Value I64(int64_t x) {
    Value v(Tag::kI64);
    v.rep_.i = x;
    return v;
  }
  static Value F64(double d) {
    Value v(Tag::kF64);
    v.rep_.d = d;
    return v;
  }

  // Copies `s` into the Value (inline when short, shared heap storage
  // otherwise).
  static Value Str(std::string_view s) {
    if (s.size() <= kInlineStrCap) return InlineValue(s);
    Value v(Tag::kOwnedStr);
    new (&v.rep_.owned) std::shared_ptr<std::string>(
        std::make_shared<std::string>(s));
    return v;
  }
  static Value Str(const char* s) { return Str(std::string_view(s)); }
  static Value Str(std::string&& s) {
    if (s.size() <= kInlineStrCap) return InlineValue(s);
    Value v(Tag::kOwnedStr);
    new (&v.rep_.owned) std::shared_ptr<std::string>(
        std::make_shared<std::string>(std::move(s)));
    return v;
  }

  // Zero-copy view of caller-owned bytes; see the lifetime contract in
  // the file comment. Short borrows are stored inline outright — an
  // inline copy costs the same as a view and can never dangle.
  static Value Borrowed(std::string_view s) {
    if (s.size() <= kInlineStrCap) return InlineValue(s);
    Value v(Tag::kViewStr);
    v.rep_.view.data = s.data();
    v.rep_.view.size = s.size();
    return v;
  }

  static Value List(ValueList items) {
    Value v(Tag::kList);
    new (&v.rep_.list) std::shared_ptr<ValueList>(
        std::make_shared<ValueList>(std::move(items)));
    return v;
  }
  static Value Handle(std::shared_ptr<ObjectHandle> h) {
    Value v(Tag::kHandle);
    new (&v.rep_.handle) std::shared_ptr<ObjectHandle>(std::move(h));
    return v;
  }

  ValueKind kind() const { return kKindByTag[static_cast<int>(tag_)]; }

  bool is_null() const { return tag_ == Tag::kNull; }
  bool is_bool() const { return tag_ == Tag::kBool; }
  bool is_i64() const { return tag_ == Tag::kI64; }
  bool is_f64() const { return tag_ == Tag::kF64; }
  bool is_str() const {
    return tag_ == Tag::kInlineStr || tag_ == Tag::kViewStr ||
           tag_ == Tag::kOwnedStr;
  }
  bool is_list() const { return tag_ == Tag::kList; }
  bool is_handle() const { return tag_ == Tag::kHandle; }
  bool is_numeric() const { return is_i64() || is_f64(); }

  // True only for the borrowed storage class (inline and owned strings
  // are self-contained).
  bool is_borrowed_str() const { return tag_ == Tag::kViewStr; }

  // Accessors; preconditions on kind are checked.
  bool bool_value() const;
  int64_t i64() const;
  double f64() const;
  // Branch-free probes for the interpreter hot path: non-null iff the
  // value holds that exact representation.
  const bool* if_bool() const {
    return tag_ == Tag::kBool ? &rep_.b : nullptr;
  }
  const int64_t* if_i64() const {
    return tag_ == Tag::kI64 ? &rep_.i : nullptr;
  }
  const double* if_f64() const {
    return tag_ == Tag::kF64 ? &rep_.d : nullptr;
  }
  // Non-null iff the string is in shared heap storage (the owned
  // class). Identity of the pointee is stable for the string's
  // lifetime, which memoizing builtins key on.
  const std::shared_ptr<std::string>* if_owned_str() const {
    return tag_ == Tag::kOwnedStr ? &rep_.owned : nullptr;
  }
  std::string_view str() const;
  const ValueList& list() const;
  ValueList& mutable_list();
  // True when this list Value is the sole owner of its storage (safe
  // to mutate in place for reuse).
  bool has_unique_list() const;
  const std::shared_ptr<ObjectHandle>& handle() const;

  // Numeric value as double (i64 or f64).
  double AsF64() const;

  // Rewrites any borrowed string content (including inside lists,
  // transitively) into self-contained storage. No-op — and no
  // allocation — when nothing is borrowed.
  void EnsureOwned();
  Value ToOwned() const {
    Value v = *this;
    v.EnsureOwned();
    return v;
  }
  // True if this value (transitively) contains borrowed strings.
  bool HasBorrowedStr() const;

  // Total order across values: first by kind rank, then by value.
  // Numeric kinds (i64/f64) compare by numeric value so mixed-type
  // comparisons behave naturally. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  uint64_t Hash() const;

  // Debug/round-trippable-for-scalars textual form, e.g. `i64:42`,
  // `str:"abc"`.
  std::string ToString() const;

 private:
  // Tag order is load-bearing: everything <= kViewStr has a trivially
  // copyable representation (copy = memcpy, destroy = no-op);
  // everything above holds one shared_ptr.
  enum class Tag : uint8_t {
    kNull = 0,
    kBool = 1,
    kI64 = 2,
    kF64 = 3,
    kInlineStr = 4,
    kViewStr = 5,
    kOwnedStr = 6,
    kList = 7,
    kHandle = 8,
  };

  static constexpr bool is_trivial_tag(Tag t) { return t <= Tag::kViewStr; }

  struct InlineStr {
    uint8_t len;
    char buf[kInlineStrCap];
    std::string_view view() const { return {buf, len}; }
  };

  struct ViewStr {  // borrowed string_view, stored as raw fields
    const char* data;
    size_t size;
  };

  union Rep {
    Rep() {}   // members are activated/destroyed by Value
    ~Rep() {}
    bool b;
    int64_t i;
    double d;
    InlineStr inl;
    ViewStr view;
    std::shared_ptr<std::string> owned;
    std::shared_ptr<ValueList> list;
    std::shared_ptr<ObjectHandle> handle;
  };

  // Raw byte copy of the union, used both for trivial-tag copies and
  // for relocating the refcounted tags on move. The void* casts are
  // deliberate: Rep has non-trivial members, but every call site
  // guarantees the destination holds no live non-trivial member.
  static void CopyRepBytes(Rep* dst, const Rep* src) {
    std::memcpy(static_cast<void*>(dst), static_cast<const void*>(src),
                sizeof(Rep));
  }

  static constexpr ValueKind kKindByTag[] = {
      ValueKind::kNull, ValueKind::kBool, ValueKind::kI64,
      ValueKind::kF64,  ValueKind::kStr,  ValueKind::kStr,
      ValueKind::kStr,  ValueKind::kList, ValueKind::kHandle};

  explicit Value(Tag tag) : tag_(tag) {}

  static Value InlineValue(std::string_view s) {
    Value v(Tag::kInlineStr);
    v.rep_.inl.len = static_cast<uint8_t>(s.size());
    if (!s.empty()) std::memcpy(v.rep_.inl.buf, s.data(), s.size());
    return v;
  }

  // Cold paths for the refcounted tags, out of line.
  void CopyRefcounted(const Value& other);
  void DestroyRefcounted();
  void AssignSlow(const Value& other);

  Tag tag_;
  Rep rep_;
};

// Derives a substring Value from `base` (which must be a str). When
// `base` is borrowed the result is a borrowed view into the same
// backing buffer (zero-copy, same lifetime); otherwise the substring
// is copied. The MRIL substring builtins route through this so that
// record-backed strings are sliced without allocating.
Value SubstrValue(const Value& base, size_t pos, size_t len);

// Bump allocator backing borrowed string Values whose lifetime is one
// record / one VM invocation. Reset() invalidates every allocation
// made since the previous Reset() but retains the underlying blocks,
// so steady-state per-record use never touches the heap.
class ValueArena {
 public:
  ValueArena() = default;
  ValueArena(const ValueArena&) = delete;
  ValueArena& operator=(const ValueArena&) = delete;

  // Uninitialized bytes, valid until Reset().
  char* Alloc(size_t n);

  std::string_view Copy(std::string_view s) {
    char* p = Alloc(s.size());
    if (!s.empty()) std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  std::string_view Concat(std::string_view a, std::string_view b) {
    char* p = Alloc(a.size() + b.size());
    if (!a.empty()) std::memcpy(p, a.data(), a.size());
    if (!b.empty()) std::memcpy(p + a.size(), b.data(), b.size());
    return {p, a.size() + b.size()};
  }

  void Reset() {
    block_ = 0;
    used_ = 0;
  }

  size_t allocated_bytes() const;

 private:
  static constexpr size_t kMinBlockBytes = 4096;

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<size_t> block_bytes_;
  size_t block_ = 0;  // index of the block Alloc is filling
  size_t used_ = 0;   // bytes used within blocks_[block_]
};

}  // namespace manimal

#endif  // MANIMAL_SERDE_VALUE_H_
