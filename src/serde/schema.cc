#include "serde/schema.h"

#include "common/strings.h"

namespace manimal {

const char* FieldTypeName(FieldType t) {
  switch (t) {
    case FieldType::kI64:
      return "i64";
    case FieldType::kF64:
      return "f64";
    case FieldType::kStr:
      return "str";
    case FieldType::kBool:
      return "bool";
  }
  return "?";
}

bool FieldTypeIsNumeric(FieldType t) {
  return t == FieldType::kI64 || t == FieldType::kF64;
}

std::optional<int> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::vector<int> Schema::NumericFieldIndexes() const {
  std::vector<int> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (FieldTypeIsNumeric(fields_[i].type)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::string Schema::ToString() const {
  if (opaque_) return "<opaque>";
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + FieldTypeName(f.type));
  }
  return JoinStrings(parts, ",");
}

Result<Schema> Schema::Parse(std::string_view text) {
  if (text == "<opaque>") return Schema::Opaque();
  std::vector<Field> fields;
  if (text.empty()) return Schema(std::move(fields));
  for (const std::string& part : SplitString(text, ',')) {
    auto pieces = SplitString(part, ':');
    if (pieces.size() != 2) {
      return Status::InvalidArgument("bad schema field: " + part);
    }
    Field f;
    f.name = pieces[0];
    if (pieces[1] == "i64") {
      f.type = FieldType::kI64;
    } else if (pieces[1] == "f64") {
      f.type = FieldType::kF64;
    } else if (pieces[1] == "str") {
      f.type = FieldType::kStr;
    } else if (pieces[1] == "bool") {
      f.type = FieldType::kBool;
    } else {
      return Status::InvalidArgument("bad field type: " + pieces[1]);
    }
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

Schema Schema::Project(const std::vector<int>& keep) const {
  std::vector<Field> fields;
  fields.reserve(keep.size());
  for (int i : keep) fields.push_back(fields_.at(i));
  return Schema(std::move(fields));
}

Status ValidateRecord(const Schema& schema, const Record& record) {
  if (schema.opaque()) {
    if (record.size() != 1 || !record[0].is_str()) {
      return Status::InvalidArgument(
          "opaque record must be a single str blob");
    }
    return Status::OK();
  }
  if (static_cast<int>(record.size()) != schema.num_fields()) {
    return Status::InvalidArgument(StrPrintf(
        "record arity %zu != schema arity %d", record.size(),
        schema.num_fields()));
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    const Value& v = record[i];
    bool ok = false;
    switch (schema.field(i).type) {
      case FieldType::kI64:
        ok = v.is_i64();
        break;
      case FieldType::kF64:
        ok = v.is_f64();
        break;
      case FieldType::kStr:
        ok = v.is_str();
        break;
      case FieldType::kBool:
        ok = v.is_bool();
        break;
    }
    if (!ok) {
      return Status::InvalidArgument(StrPrintf(
          "field %d (%s) has kind %s, expected %s", i,
          schema.field(i).name.c_str(), ValueKindName(v.kind()),
          FieldTypeName(schema.field(i).type)));
    }
  }
  return Status::OK();
}

}  // namespace manimal
