// Cost-based planning ablation — the approach the paper defers (§2.2:
// the optimizer's choices "in the long run should be determined by a
// cost-based approach, but for now are solved with simple rule-based
// heuristics").
//
// A selection query sweeps selectivity with ONLY a locator B+Tree
// artifact cataloged. The rule-based planner always uses the index;
// the cost-based planner prices it (selectivity off the tree's own
// fan-out, one base-block decode per match) and falls back to the
// scan once the index would read more than scanning — the classic
// index-abuse crossover.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("ext-cost");

  workloads::WebPagesOptions pages;
  pages.num_pages = 60000 * scale;
  pages.content_len = 384;
  pages.rank_range = 100000;
  bench::CheckOk(
      workloads::GenerateWebPages(ws.file("pages.msq"), pages).status(),
      "gen webpages");

  auto open_system = [&](bool cost_based) {
    core::ManimalSystem::Options options;
    options.workspace_dir =
        ws.file(cost_based ? "ws-cost" : "ws-rule");
    options.map_parallelism =
        static_cast<int>(EnvInt64("MANIMAL_THREADS", 4));
    options.num_partitions = options.map_parallelism;
    options.simulated_startup_seconds = 0.01;
    options.cost_based_optimizer = cost_based;
    return bench::CheckOk(core::ManimalSystem::Open(options), "open");
  };
  auto rule_system = open_system(false);
  auto cost_system = open_system(true);

  // Build only the locator B+Tree in both workspaces.
  for (core::ManimalSystem* system :
       {rule_system.get(), cost_system.get()}) {
    auto report = bench::CheckOk(
        analyzer::Analyze(workloads::SelectionCountQuery(0)), "analyze");
    auto specs = analyzer::SynthesizeIndexPrograms(
        workloads::SelectionCountQuery(0), report);
    const analyzer::IndexGenProgram* locator = nullptr;
    for (const auto& s : specs) {
      if (s.btree && !s.clustered && !s.projection) locator = &s;
    }
    bench::CheckOk(locator == nullptr
                       ? Status::Internal("no locator spec")
                       : Status::OK(),
                   "locator spec");
    bench::CheckOk(
        system->BuildIndex(*locator, ws.file("pages.msq")).status(),
        "build index");
  }

  std::printf(
      "Cost-based vs rule-based planning with only a locator B+Tree "
      "cataloged (scale=%lld)\n(paper: cost-based planning named as "
      "the long-run approach)\n\n",
      static_cast<long long>(scale));
  bench::TablePrinter table({"Selectivity", "Rule-based", "Cost-based",
                             "Cost-based plan", "Outputs"});
  bool all_match = true;

  for (int pct : {80, 40, 10, 1}) {
    int64_t threshold =
        pages.rank_range - (pages.rank_range * pct) / 100 - 1;
    mril::Program program = workloads::SelectionCountQuery(threshold);
    core::ManimalSystem::Submission job;
    job.program = program;
    job.input_path = ws.file("pages.msq");

    job.output_path = ws.file("rule.prs");
    core::ManimalSystem::SubmitOutcome rule_outcome;
    exec::JobResult rule = bench::Averaged([&] {
      rule_outcome =
          bench::CheckOk(rule_system->Submit(job), "rule submit");
      return rule_outcome.job;
    });

    job.output_path = ws.file("cost.prs");
    core::ManimalSystem::SubmitOutcome cost_outcome;
    exec::JobResult cost = bench::Averaged([&] {
      cost_outcome =
          bench::CheckOk(cost_system->Submit(job), "cost submit");
      return cost_outcome.job;
    });

    auto a = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("rule.prs")),
                            "rule out");
    auto b = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("cost.prs")),
                            "cost out");
    bool match = a == b;
    all_match = all_match && match;

    bool declined = cost_outcome.plan.explanation.find(
                        "no cataloged artifact beats") !=
                    std::string::npos;
    table.AddRow({StrPrintf("%d%%", pct),
                  bench::Secs(rule.reported_seconds),
                  bench::Secs(cost.reported_seconds),
                  declined ? "declined index (scan)" : "used index",
                  match ? "identical" : "MISMATCH"});
    bench::JsonRow("ext_cost_optimizer",
                   StrPrintf("selectivity-%d%%/rule", pct))
        .Job(rule)
        .Emit();
    bench::JsonRow("ext_cost_optimizer",
                   StrPrintf("selectivity-%d%%/cost", pct))
        .Str("plan", declined ? "scan" : "index")
        .Job(cost)
        .Emit();
  }
  table.Print();
  std::printf("\nAll outputs identical: %s\n",
              all_match ? "yes" : "NO (BUG)");
  return all_match ? 0 : 1;
}
