// Native codegen tier microbenchmark (src/codegen/, docs/mril.md
// "Native kernels"): records/second for a detected selection +
// projection map function under four executors over the same
// in-memory web-pages dataset:
//
//   hand      a hand-written C++ loop — reads the rank field, tests
//             the predicate, consumes (url, rank). The ceiling the
//             tier is measured against: the acceptance target is the
//             closure kernel within 2x of this loop.
//   closure   the closure-engine kernel (CompileKernel, kClosure) via
//             the same Run()/bailout-replay contract the engine uses.
//   emitted   the emitted-source + dlopen kernel (kEmitted) when the
//             build carries it (MANIMAL_CODEGEN_DLOPEN).
//   vm        the MRIL VM (default dispatch) — the tier's baseline;
//             included so the native speedup is visible next to the
//             hand-written gap.
//
// Two selectivity regimes: "sel50" (half the records pass, the
// projection path dominates) and "sel1" (1% pass, the predicate
// short-circuit dominates). Every leg must produce the identical
// (emits, checksum) pair — a mini differential check guarding the
// numbers.
//
// Rows land in MANIMAL_BENCH_JSON (see bench_util.h); the committed
// snapshot is BENCH_native.json. MANIMAL_SCALE multiplies the record
// count.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codegen/dlopen_kernel.h"
#include "codegen/kernel.h"
#include "common/stopwatch.h"
#include "mril/builder.h"
#include "mril/vm.h"
#include "serde/value.h"
#include "workloads/schemas.h"

namespace manimal::bench {
namespace {

using codegen::CompileKernel;
using codegen::CompileOptions;
using codegen::KernelOutcome;
using codegen::KernelScratch;
using codegen::NativeKernel;

// map: if (rank >= threshold) emit(url, rank) — the canonical detected
// selection+projection shape (paper Sec. 3).
mril::Program SelectProjectProgram(int64_t threshold) {
  mril::ProgramBuilder b("bench-sel-proj");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  mril::FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGe();
  m.JmpIfFalse("end");
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("rank");
  m.Emit();
  m.Label("end").Ret();
  return b.Build();
}

std::vector<Value> MakePages(int64_t n) {
  std::vector<Value> records;
  records.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    records.push_back(Value::List(
        {Value::Str(StrPrintf("http://site-%04lld.example/page",
                              static_cast<long long>(i % 9973))),
         Value::I64(i % 1000),
         Value::Str("lorem ipsum dolor sit amet")}));
  }
  return records;
}

// What each leg does with an emitted pair; cheap but unforgeable, so
// the compiler cannot dead-code the loop and the legs must agree.
struct Sink {
  int64_t emits = 0;
  int64_t checksum = 0;
  void Consume(const Value& key, const Value& value) {
    ++emits;
    checksum += static_cast<int64_t>(key.str().size()) + value.i64();
  }
};

// The measured quantity: records/second over one full pass.
using Leg = std::function<double(const std::vector<Value>&, Sink*)>;

double RunHandwritten(const std::vector<Value>& records, Sink* sink,
                      int64_t threshold) {
  Stopwatch timer;
  for (const Value& record : records) {
    const ValueList& fields = record.list();
    const int64_t* rank = fields[1].if_i64();
    if (rank != nullptr && *rank >= threshold) {
      sink->Consume(fields[0], fields[1]);
    }
  }
  return static_cast<double>(records.size()) / timer.ElapsedSeconds();
}

double RunKernel(const std::vector<Value>& records, Sink* sink,
                 const NativeKernel& kernel, mril::VmInstance* vm) {
  KernelScratch scratch;
  const Value key = Value::I64(0);
  Stopwatch timer;
  for (const Value& record : records) {
    Value out_key, out_value;
    switch (kernel.Run(key, record, &scratch, &out_key, &out_value)) {
      case KernelOutcome::kEmit:
        sink->Consume(out_key, out_value);
        break;
      case KernelOutcome::kSkip:
        break;
      case KernelOutcome::kBailout:
        CheckOk(vm->InvokeMap(key, record), "bailout replay");
        break;
    }
  }
  return static_cast<double>(records.size()) / timer.ElapsedSeconds();
}

double RunVm(const std::vector<Value>& records, Sink* sink,
             mril::VmInstance* vm) {
  const Value key = Value::I64(0);
  Stopwatch timer;
  for (const Value& record : records) {
    CheckOk(vm->InvokeMap(key, record), "vm invoke");
  }
  (void)sink;  // populated through the emit sink
  return static_cast<double>(records.size()) / timer.ElapsedSeconds();
}

int Main() {
  const int64_t n = 200'000 * ScaleFactor();
  const std::vector<Value> records = MakePages(n);

  struct Config {
    const char* name;
    int64_t threshold;
  };
  const Config configs[] = {{"sel50", 500}, {"sel1", 990}};

  std::printf(
      "native kernel microbench (%lld records, emitted engine: %s)\n",
      static_cast<long long>(n),
      codegen::EmittedKernelAvailable() ? "yes" : "no");
  TablePrinter table({"config", "leg", "Mrec/s", "vs hand", "vs vm"});

  bool within_2x = true;
  for (const Config& config : configs) {
    mril::Program program = SelectProjectProgram(config.threshold);

    // Compile both engines up front (compile time is job-prepare cost,
    // not per-record cost; the engine compiles once per task chain).
    CompileOptions closure_opts;
    closure_opts.engine = CompileOptions::Engine::kClosure;
    std::shared_ptr<const NativeKernel> closure =
        CheckOk(CompileKernel(program, closure_opts), "closure compile");
    std::shared_ptr<const NativeKernel> emitted;
    if (codegen::EmittedKernelAvailable()) {
      CompileOptions emitted_opts;
      emitted_opts.engine = CompileOptions::Engine::kEmitted;
      emitted =
          CheckOk(CompileKernel(program, emitted_opts), "emitted compile");
    }

    mril::VmInstance vm(&program, mril::VmOptions{});
    Sink* vm_sink = nullptr;
    vm.set_emit_sink([&](const Value& k, const Value& v) {
      if (vm_sink != nullptr) vm_sink->Consume(k, v);
      return Status::OK();
    });

    struct LegSpec {
      const char* name;
      std::function<double(Sink*)> run;
    };
    std::vector<LegSpec> legs;
    legs.push_back({"hand", [&](Sink* s) {
                      return RunHandwritten(records, s, config.threshold);
                    }});
    legs.push_back({"closure", [&](Sink* s) {
                      vm_sink = s;  // bailout replays emit through the VM
                      return RunKernel(records, s, *closure, &vm);
                    }});
    if (emitted != nullptr) {
      legs.push_back({"emitted", [&](Sink* s) {
                        vm_sink = s;
                        return RunKernel(records, s, *emitted, &vm);
                      }});
    }
    legs.push_back({"vm", [&](Sink* s) {
                      vm_sink = s;
                      return RunVm(records, s, &vm);
                    }});

    double hand_rate = 0, vm_rate = 0;
    int64_t want_emits = -1, want_checksum = 0;
    std::vector<std::pair<std::string, double>> rates;
    for (const LegSpec& leg : legs) {
      double best = 0;
      Sink sink;
      // Best-of-N to shed scheduler noise; every rep re-checks the
      // differential pair.
      for (int rep = 0; rep < std::max(1, Runs()) + 2; ++rep) {
        sink = Sink{};
        best = std::max(best, leg.run(&sink));
      }
      if (want_emits < 0) {
        want_emits = sink.emits;
        want_checksum = sink.checksum;
      } else if (sink.emits != want_emits ||
                 sink.checksum != want_checksum) {
        std::fprintf(stderr,
                     "FATAL %s/%s disagrees: emits=%lld checksum=%lld "
                     "(want %lld/%lld)\n",
                     config.name, leg.name,
                     static_cast<long long>(sink.emits),
                     static_cast<long long>(sink.checksum),
                     static_cast<long long>(want_emits),
                     static_cast<long long>(want_checksum));
        return 1;
      }
      if (std::string(leg.name) == "hand") hand_rate = best;
      if (std::string(leg.name) == "vm") vm_rate = best;
      rates.emplace_back(leg.name, best);
    }

    for (const auto& [name, rate] : rates) {
      const double vs_hand = hand_rate > 0 ? rate / hand_rate : 1;
      const double vs_vm = vm_rate > 0 ? rate / vm_rate : 0;
      table.AddRow({config.name, name, StrPrintf("%.1f", rate / 1e6),
                    StrPrintf("%.2fx", vs_hand),
                    StrPrintf("%.2fx", vs_vm)});
      JsonRow("native_kernel", std::string(config.name) + "/" + name)
          .Int("records", n)
          .Int("emits", want_emits)
          .Num("records_per_sec", rate)
          .Num("vs_handwritten", vs_hand)
          .Num("vs_vm", vs_vm)
          .Emit();
      if (name == "closure" && hand_rate > 0 && rate * 2 < hand_rate) {
        within_2x = false;
      }
    }
  }
  table.Print();
  std::printf("closure within 2x of hand-written: %s\n",
              within_2x ? "yes" : "NO");
  return 0;
}

}  // namespace
}  // namespace manimal::bench

int main() { return manimal::bench::Main(); }
