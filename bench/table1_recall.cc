// Reproduces Table 1: analyzer recall on the four Pavlo benchmark
// programs. A human-annotated ground truth (which optimizations are
// actually present in each program) is compared against what the
// analyzer detects; every cell must come out Detected / Undetected /
// Not Present exactly as in the paper, and there must be no false
// positives.

#include <cstdio>
#include <optional>
#include <string>

#include "analyzer/analyzer.h"
#include "bench/bench_util.h"
#include "workloads/pavlo.h"

namespace manimal {
namespace {

struct GroundTruth {
  bool select_present;
  bool project_present;
  bool delta_present;
};

struct BenchCase {
  std::string name;
  std::string description;
  mril::Program program;
  GroundTruth truth;
};

std::string Cell(bool present, bool detected, bool* false_positive) {
  if (!present) {
    if (detected) *false_positive = true;
    return detected ? "FALSE-POSITIVE" : "Not Present";
  }
  return detected ? "Detected" : "Undetected";
}

}  // namespace
}  // namespace manimal

int main() {
  using namespace manimal;

  std::vector<BenchCase> cases;
  cases.push_back({"Benchmark-1", "Selection",
                   workloads::Benchmark1Selection(99000),
                   // Selection present; projection (avgDuration unused)
                   // and delta (pageRank/avgDuration numeric) present
                   // but hidden inside AbstractTuple.
                   {true, true, true}});
  cases.push_back({"Benchmark-2", "Aggregation",
                   workloads::Benchmark2Aggregation(),
                   // Always emits; 2 of 9 fields used; numeric fields.
                   {false, true, true}});
  cases.push_back({"Benchmark-3", "Join",
                   workloads::Benchmark3Join(20100, 20102),
                   // Date-range selection; full tuple emitted (nothing
                   // to project); numeric fields.
                   {true, false, true}});
  cases.push_back({"Benchmark-4", "UDF Aggregation",
                   workloads::Benchmark4UdfAggregation(),
                   // Hashtable-based URL filter is a selection the
                   // analyzer cannot see; both fields used; no numeric
                   // fields.
                   {true, false, false}});

  bench::TablePrinter table(
      {"Test", "Description", "Select", "Project", "Delta-Compression"});
  bool false_positive = false;
  int detected = 0, undetected = 0;

  std::vector<std::string> notes;
  for (const BenchCase& c : cases) {
    analyzer::AnalysisReport report =
        bench::CheckOk(analyzer::Analyze(c.program), "analyze");
    bool got_select = report.selection.has_value();
    bool got_project = report.projection.has_value();
    bool got_delta = report.delta.has_value();

    for (auto [present, got] :
         {std::pair{c.truth.select_present, got_select},
          std::pair{c.truth.project_present, got_project},
          std::pair{c.truth.delta_present, got_delta}}) {
      if (present && got) ++detected;
      if (present && !got) ++undetected;
    }

    table.AddRow({c.name, c.description,
                  Cell(c.truth.select_present, got_select,
                       &false_positive),
                  Cell(c.truth.project_present, got_project,
                       &false_positive),
                  Cell(c.truth.delta_present, got_delta,
                       &false_positive)});
    for (const analyzer::MissReason& m : report.misses) {
      notes.push_back(c.name + " [" + m.optimization + "]: " + m.reason);
    }
  }

  bench::JsonRow("table1_recall", "summary")
      .Int("detected", detected)
      .Int("undetected", undetected)
      .Int("false_positives", false_positive ? 1 : 0)
      .Emit();

  std::printf(
      "Table 1: Manimal analyzer recall on the Pavlo benchmark "
      "programs\n(paper: 5 detected, 3 undetected, 4 not present, 0 "
      "false positives)\n\n");
  table.Print();
  std::printf("\nDetected: %d   Undetected: %d   False positives: %s\n",
              detected, undetected, false_positive ? "YES (BUG)" : "0");
  std::printf("\nAnalyzer explanations for undetected cells:\n");
  for (const std::string& n : notes) {
    std::printf("  %s\n", n.c_str());
  }
  return false_positive ? 1 : 0;
}
