// Shared plumbing for the paper-table benchmark binaries.
//
// Scale control:
//   MANIMAL_SCALE  multiplies dataset sizes (default 1; the defaults
//                  keep every bench in the seconds range — the paper's
//                  hundred-GB datasets are reached by raising this).
//   MANIMAL_RUNS   timed repetitions averaged per configuration
//                  (default 1; the paper averaged 3).
//   MANIMAL_SORT_BUFFER_BYTES  total map-side sort budget, divided
//                  across mappers (default 32 MiB; shrink to force
//                  shuffle spills — see docs/execution.md).
//
// Telemetry (see docs/observability.md):
//   MANIMAL_BENCH_JSON  append one JSON object per reported row to
//                       this file (JSON lines) — machine-readable
//                       mirror of the printed tables.
//   MANIMAL_TRACE       write a Chrome trace-event JSON of the whole
//                       run to this path (open in chrome://tracing or
//                       https://ui.perfetto.dev).

#ifndef MANIMAL_BENCH_BENCH_UTIL_H_
#define MANIMAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "obs/json.h"

namespace manimal::bench {

inline int64_t ScaleFactor() { return EnvInt64("MANIMAL_SCALE", 1); }
inline int Runs() {
  return static_cast<int>(EnvInt64("MANIMAL_RUNS", 1));
}

// Aborts the bench with a message on error (benches are top-level
// programs; there is nobody to propagate to).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

// A scratch workspace under the system temp dir, removed on
// destruction.
class BenchWorkspace {
 public:
  explicit BenchWorkspace(const std::string& tag)
      : dir_(MakeTempDir("bench-" + tag)) {}
  ~BenchWorkspace() { (void)RemoveDirRecursively(dir_); }

  const std::string& dir() const { return dir_; }
  std::string file(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::unique_ptr<core::ManimalSystem> OpenSystem(
      double startup_seconds = 0.01) {
    core::ManimalSystem::Options options;
    options.workspace_dir = file("ws");
    options.map_parallelism =
        static_cast<int>(EnvInt64("MANIMAL_THREADS", 4));
    options.num_partitions = options.map_parallelism;
    options.sort_buffer_bytes = static_cast<uint64_t>(EnvInt64(
        "MANIMAL_SORT_BUFFER_BYTES",
        static_cast<int64_t>(options.sort_buffer_bytes)));
    options.simulated_startup_seconds = startup_seconds;
    return CheckOk(core::ManimalSystem::Open(options), "open system");
  }

 private:
  std::string dir_;
};

// Runs `fn` Runs() times and returns the mean JobResult (times
// averaged, counters from the last run).
inline exec::JobResult Averaged(
    const std::function<exec::JobResult()>& fn) {
  exec::JobResult last;
  double wall = 0, reported = 0;
  int runs = std::max(1, Runs());
  for (int i = 0; i < runs; ++i) {
    last = fn();
    wall += last.wall_seconds;
    reported += last.reported_seconds;
  }
  last.wall_seconds = wall / runs;
  last.reported_seconds = reported / runs;
  return last;
}

// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(headers_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < widths.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]),
                    i < row.size() ? row[i].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (size_t i = 0; i < widths.size(); ++i) {
      std::printf("%s  ", std::string(widths[i], '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Secs(double s) { return StrPrintf("%.3f s", s); }
inline std::string Ratio(double r) { return StrPrintf("%.2fx", r); }
inline std::string Pct(double r) { return StrPrintf("%.1f%%", r * 100); }

// ---- machine-readable results (MANIMAL_BENCH_JSON) ----

// One escaping implementation for every JSON artifact (see
// src/obs/json.h — the old local copy here forgot '\r').
using obs::JsonEscape;

// One row of bench output as a JSON object, appended as a single line
// to $MANIMAL_BENCH_JSON when set (no-op otherwise). Usage:
//   JsonRow("table2_endtoend", "grep-baseline")
//       .Num("speedup", 14.5).Job(job).Emit();
class JsonRow {
 public:
  JsonRow(const std::string& bench, const std::string& row) {
    Str("bench", bench);
    Str("row", row);
    Int("scale", ScaleFactor());
  }

  JsonRow& Str(const std::string& key, const std::string& value) {
    std::string quoted;
    quoted += '"';
    quoted += JsonEscape(value);
    quoted += '"';
    return Raw(key, quoted);
  }
  JsonRow& Num(const std::string& key, double value) {
    return Raw(key, StrPrintf("%.6g", value));
  }
  JsonRow& Int(const std::string& key, int64_t value) {
    return Raw(key, StrPrintf("%lld", static_cast<long long>(value)));
  }

  // Expands a JobResult: timings, key counters, phase breakdown.
  JsonRow& Job(const exec::JobResult& job) {
    Num("wall_seconds", job.wall_seconds);
    Num("reported_seconds", job.reported_seconds);
    Num("simulated_io_seconds", job.simulated_io_seconds);
    Int("input_records", job.counters.input_records);
    Int("input_bytes", job.counters.input_bytes);
    Int("map_output_bytes", job.counters.map_output_bytes);
    Int("output_records", job.counters.output_records);
    Int("bytes_decoded", job.counters.bytes_decoded);
    Int("blocks_skipped", job.counters.blocks_skipped);
    Int("shuffle_spilled_runs", job.counters.shuffle_spilled_runs);
    std::string phases;
    for (const auto& [name, stat] : job.phase_breakdown) {
      if (!phases.empty()) phases += ",";
      phases += StrPrintf("\"%s\":{\"seconds\":%.6g,\"bytes\":%llu}",
                          JsonEscape(name).c_str(), stat.seconds,
                          static_cast<unsigned long long>(stat.bytes));
    }
    return Raw("phases", "{" + phases + "}");
  }

  JsonRow& Raw(const std::string& key, const std::string& json) {
    if (!fields_.empty()) fields_ += ',';
    fields_ += '"';
    fields_ += JsonEscape(key);
    fields_ += "\":";
    fields_ += json;
    return *this;
  }

  void Emit() {
    const char* path = std::getenv("MANIMAL_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr) return;
    std::fprintf(f, "{%s}\n", fields_.c_str());
    std::fclose(f);
  }

 private:
  std::string fields_;
};

}  // namespace manimal::bench

#endif  // MANIMAL_BENCH_BENCH_UTIL_H_
