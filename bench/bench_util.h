// Shared plumbing for the paper-table benchmark binaries.
//
// Scale control:
//   MANIMAL_SCALE  multiplies dataset sizes (default 1; the defaults
//                  keep every bench in the seconds range — the paper's
//                  hundred-GB datasets are reached by raising this).
//   MANIMAL_RUNS   timed repetitions averaged per configuration
//                  (default 1; the paper averaged 3).

#ifndef MANIMAL_BENCH_BENCH_UTIL_H_
#define MANIMAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/manimal.h"
#include "exec/pairfile.h"

namespace manimal::bench {

inline int64_t ScaleFactor() { return EnvInt64("MANIMAL_SCALE", 1); }
inline int Runs() {
  return static_cast<int>(EnvInt64("MANIMAL_RUNS", 1));
}

// Aborts the bench with a message on error (benches are top-level
// programs; there is nobody to propagate to).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

// A scratch workspace under the system temp dir, removed on
// destruction.
class BenchWorkspace {
 public:
  explicit BenchWorkspace(const std::string& tag)
      : dir_(MakeTempDir("bench-" + tag)) {}
  ~BenchWorkspace() { (void)RemoveDirRecursively(dir_); }

  const std::string& dir() const { return dir_; }
  std::string file(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::unique_ptr<core::ManimalSystem> OpenSystem(
      double startup_seconds = 0.01) {
    core::ManimalSystem::Options options;
    options.workspace_dir = file("ws");
    options.map_parallelism =
        static_cast<int>(EnvInt64("MANIMAL_THREADS", 4));
    options.num_partitions = options.map_parallelism;
    options.simulated_startup_seconds = startup_seconds;
    return CheckOk(core::ManimalSystem::Open(options), "open system");
  }

 private:
  std::string dir_;
};

// Runs `fn` Runs() times and returns the mean JobResult (times
// averaged, counters from the last run).
inline exec::JobResult Averaged(
    const std::function<exec::JobResult()>& fn) {
  exec::JobResult last;
  double wall = 0, reported = 0;
  int runs = std::max(1, Runs());
  for (int i = 0; i < runs; ++i) {
    last = fn();
    wall += last.wall_seconds;
    reported += last.reported_seconds;
  }
  last.wall_seconds = wall / runs;
  last.reported_seconds = reported / runs;
  return last;
}

// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(headers_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < widths.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]),
                    i < row.size() ? row[i].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (size_t i = 0; i < widths.size(); ++i) {
      std::printf("%s  ", std::string(widths[i], '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Secs(double s) { return StrPrintf("%.3f s", s); }
inline std::string Ratio(double r) { return StrPrintf("%.2fx", r); }
inline std::string Pct(double r) { return StrPrintf("%.1f%%", r * 100); }

}  // namespace manimal::bench

#endif  // MANIMAL_BENCH_BENCH_UTIL_H_
