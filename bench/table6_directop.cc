// Reproduces Table 6 (Appendix D): operating directly on compressed
// data. destURL is dictionary-compressed on disk and never
// decompressed: the program groups by the integer code, which
// preserves the group-by semantics because the URL itself never
// reaches the final output (paper: "it simply uses destURL as the key
// parameter to reduce()"). Paper shape: ~2.34x speedup from a smaller
// input, smaller intermediate data, and faster sorting.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("table6");

  workloads::UserVisitsOptions visits;
  visits.num_visits = 300000 * scale;
  visits.num_pages = 20000 * scale;
  bench::CheckOk(
      workloads::GenerateUserVisits(ws.file("visits.msq"), visits)
          .status(),
      "gen visits");
  uint64_t original_bytes =
      bench::CheckOk(GetFileSize(ws.file("visits.msq")), "file size");

  auto system = ws.OpenSystem();
  mril::Program program = workloads::DirectOpQuery();

  analyzer::AnalysisReport report =
      bench::CheckOk(analyzer::Analyze(program), "analyze");
  bench::CheckOk(report.direct_op.has_value()
                     ? Status::OK()
                     : Status::Internal(report.ToString()),
                 "direct-op detection");

  // Isolate direct-operation: build only the dictionary artifact (all
  // other fields stay uncompressed, like the paper's setup).
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  const analyzer::IndexGenProgram* dict_only = nullptr;
  for (const auto& spec : specs) {
    if (spec.dictionary && !spec.btree && !spec.projection &&
        !spec.delta) {
      dict_only = &spec;
    }
  }
  bench::CheckOk(dict_only == nullptr
                     ? Status::Internal("no dict-only spec")
                     : Status::OK(),
                 "dict spec");
  exec::IndexBuildResult build = bench::CheckOk(
      system->BuildIndex(*dict_only, ws.file("visits.msq")),
      "build dictionary artifact");

  core::ManimalSystem::Submission submission;
  submission.program = program;
  submission.input_path = ws.file("visits.msq");

  submission.output_path = ws.file("h.out");
  exec::JobResult hadoop = bench::Averaged([&] {
    return bench::CheckOk(system->RunBaseline(submission), "baseline");
  });

  submission.output_path = ws.file("m.out");
  core::ManimalSystem::SubmitOutcome outcome;
  exec::JobResult manimal = bench::Averaged([&] {
    outcome = bench::CheckOk(system->Submit(submission), "submit");
    return outcome.job;
  });
  bench::CheckOk(outcome.plan.optimized
                     ? Status::OK()
                     : Status::Internal(outcome.plan.explanation),
                 "expected optimized plan");

  auto h = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("h.out")),
                          "baseline output");
  auto m = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("m.out")),
                          "optimized output");
  bool match = h == m;

  bench::JsonRow("table6_directop", "hadoop").Job(hadoop).Emit();
  bench::JsonRow("table6_directop", "manimal")
      .Int("artifact_bytes", build.entry.artifact_bytes)
      .Num("speedup",
           hadoop.reported_seconds / manimal.reported_seconds)
      .Job(manimal)
      .Emit();

  std::printf(
      "Table 6: Direct operation on compressed data (scale=%lld)\n"
      "(paper: indexed file 76.87GB vs 123.65GB original; 2.34x "
      "speedup)\n\n",
      static_cast<long long>(scale));
  bench::TablePrinter table({"", "Hadoop", "Manimal"});
  table.AddRow({"Original file size", HumanBytes(original_bytes),
                HumanBytes(original_bytes)});
  table.AddRow({"Indexed file size", HumanBytes(original_bytes),
                HumanBytes(build.entry.artifact_bytes)});
  table.AddRow({"Shuffle bytes",
                HumanBytes(hadoop.counters.map_output_bytes),
                HumanBytes(manimal.counters.map_output_bytes)});
  table.AddRow({"Running time", bench::Secs(hadoop.reported_seconds),
                bench::Secs(manimal.reported_seconds)});
  table.AddRow({"Speedup", "",
                bench::Ratio(hadoop.reported_seconds /
                             manimal.reported_seconds)});
  table.Print();
  std::printf("\nOutputs identical: %s\n", match ? "yes" : "NO (BUG)");
  return match ? 0 : 1;
}
