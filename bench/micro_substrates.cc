// Ablation microbenchmarks (google-benchmark) for the substrates the
// paper's results rest on: varint coding, ordered-key encoding, the
// B+Tree (node-size sweep), the external sorter (spill-threshold
// sweep), the row codec, the delta/dictionary codecs, and the MRIL VM
// dispatch loop. These quantify the design choices DESIGN.md calls
// out.

#include <benchmark/benchmark.h>

#include "columnar/dictionary.h"
#include "columnar/seqfile.h"
#include "common/coding.h"
#include "common/env.h"
#include "common/random.h"
#include "index/btree.h"
#include "index/external_sorter.h"
#include "mril/vm.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal {
namespace {

void BM_VarintRoundtrip(benchmark::State& state) {
  Rng rng(7);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> (rng.Uniform(60));
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    for (uint64_t v : values) PutVarint64(&buf, v);
    std::string_view in = buf;
    uint64_t out = 0, sum = 0;
    while (!in.empty()) {
      (void)GetVarint64(&in, &out);
      sum += out;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintRoundtrip);

void BM_OrderedKeyEncode(benchmark::State& state) {
  Rng rng(8);
  std::vector<Value> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back(Value::I64(static_cast<int64_t>(rng.Next())));
  }
  std::string buf;
  for (auto _ : state) {
    for (const Value& k : keys) {
      buf.clear();
      (void)EncodeOrderedKey(k, &buf);
      benchmark::DoNotOptimize(buf.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_OrderedKeyEncode);

void BM_RowCodec(benchmark::State& state) {
  Schema schema = workloads::UserVisitsSchema();
  Rng rng(9);
  Record record = {Value::Str(rng.IpAddress()),
                   Value::Str("http://example.com/x"),
                   Value::I64(20100),
                   Value::I64(1234),
                   Value::Str("Mozilla/5.0"),
                   Value::Str("USA"),
                   Value::Str("en"),
                   Value::Str(rng.AsciiString(8)),
                   Value::I64(37)};
  std::string buf;
  Record out;
  for (auto _ : state) {
    buf.clear();
    (void)EncodeRecord(schema, record, &buf);
    std::string_view in = buf;
    (void)DecodeRecord(schema, &in, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowCodec);

// B+Tree point lookups across node sizes (the design-choice sweep).
void BM_BTreeLookup(benchmark::State& state) {
  const int64_t node_bytes = state.range(0);
  const int n = 200000;
  std::string dir = MakeTempDir("bm-btree");
  std::string path = dir + "/t.idx";
  {
    index::BTreeBuilder::Options opts;
    opts.target_node_bytes = static_cast<uint32_t>(node_bytes);
    auto builder =
        std::move(index::BTreeBuilder::Create(path, opts)).value();
    std::string key, payload = "payload-payload-payload";
    for (int i = 0; i < n; ++i) {
      key.clear();
      (void)EncodeOrderedKey(Value::I64(i), &key);
      (void)builder->Add(key, payload);
    }
    (void)builder->Finish();
  }
  auto reader = std::move(index::BTreeReader::Open(path)).value();
  Rng rng(11);
  std::string key;
  for (auto _ : state) {
    key.clear();
    (void)EncodeOrderedKey(
        Value::I64(static_cast<int64_t>(rng.Uniform(n))), &key);
    auto it = std::move(reader->Seek(key, true)).value();
    benchmark::DoNotOptimize(it.Valid());
  }
  state.SetItemsProcessed(state.iterations());
  (void)RemoveDirRecursively(dir);
}
BENCHMARK(BM_BTreeLookup)->Arg(4096)->Arg(16384)->Arg(65536);

// Full-range scan throughput.
void BM_BTreeScan(benchmark::State& state) {
  const int n = 100000;
  std::string dir = MakeTempDir("bm-btreescan");
  std::string path = dir + "/t.idx";
  {
    auto builder = std::move(index::BTreeBuilder::Create(path)).value();
    std::string key;
    for (int i = 0; i < n; ++i) {
      key.clear();
      (void)EncodeOrderedKey(Value::I64(i), &key);
      (void)builder->Add(key, "0123456789abcdef");
    }
    (void)builder->Finish();
  }
  auto reader = std::move(index::BTreeReader::Open(path)).value();
  for (auto _ : state) {
    auto it = std::move(reader->SeekToFirst()).value();
    uint64_t count = 0;
    while (it.Valid()) {
      ++count;
      (void)it.Next();
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  (void)RemoveDirRecursively(dir);
}
BENCHMARK(BM_BTreeScan);

// External sorter with varying memory budget (spill-count ablation).
void BM_ExternalSort(benchmark::State& state) {
  const uint64_t budget = static_cast<uint64_t>(state.range(0)) << 10;
  const int n = 100000;
  std::string dir = MakeTempDir("bm-sort");
  Rng rng(13);
  std::vector<std::string> keys(n);
  for (auto& k : keys) k = rng.AsciiString(16);
  for (auto _ : state) {
    index::ExternalSorter::Options opts;
    opts.temp_dir = dir;
    opts.memory_budget_bytes = budget;
    index::ExternalSorter sorter(opts);
    for (const std::string& k : keys) (void)sorter.Add(k, "v");
    auto stream = std::move(sorter.Finish()).value();
    uint64_t count = 0;
    while (stream->Valid()) {
      ++count;
      (void)stream->Next();
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  (void)RemoveDirRecursively(dir);
}
BENCHMARK(BM_ExternalSort)->Arg(256)->Arg(1024)->Arg(65536);

// Dictionary encode/lookup.
void BM_DictionaryEncode(benchmark::State& state) {
  Rng rng(17);
  std::vector<std::string> urls(5000);
  for (size_t i = 0; i < urls.size(); ++i) {
    urls[i] = "http://www.site" + std::to_string(i % 500) +
              ".example.com/page.html";
  }
  for (auto _ : state) {
    columnar::DictionaryBuilder builder;
    int64_t sum = 0;
    for (const std::string& u : urls) sum += builder.EncodeOrAdd(u);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * urls.size());
}
BENCHMARK(BM_DictionaryEncode);

// MRIL VM dispatch: the §2.1 example map over in-memory records.
void BM_VmMapInvocation(benchmark::State& state) {
  mril::Program program = workloads::ExampleRankFilter(50);
  mril::VmInstance vm(&program);
  uint64_t emitted = 0;
  vm.set_emit_sink([&emitted](const Value&, const Value&) {
    ++emitted;
    return Status::OK();
  });
  Value value = Value::List({Value::Str("http://a"), Value::I64(75),
                             Value::Str("content")});
  Value key = Value::I64(0);
  for (auto _ : state) {
    (void)vm.InvokeMap(key, value);
  }
  benchmark::DoNotOptimize(emitted);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmMapInvocation);

// SeqFile scan throughput: plain vs delta-encoded numeric columns.
void BM_SeqFileScan(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  std::string dir = MakeTempDir("bm-seq");
  std::string path = dir + "/t.msq";
  Schema schema({{"a", FieldType::kI64}, {"b", FieldType::kI64}});
  {
    columnar::SeqFileMeta meta = columnar::PlainMeta(schema);
    if (delta) meta.delta_slots = {0, 1};
    auto writer =
        std::move(columnar::SeqFileWriter::Create(path, meta)).value();
    for (int i = 0; i < 100000; ++i) {
      (void)writer->Append(
          {Value::I64(1000000 + i), Value::I64(i * 3)});
    }
    (void)writer->Finish();
  }
  auto reader = std::move(columnar::SeqFileReader::Open(path)).value();
  for (auto _ : state) {
    auto stream = std::move(reader->ScanAll()).value();
    Record record;
    uint64_t count = 0;
    for (;;) {
      auto more = stream.Next(&record);
      if (!more.ok() || !*more) break;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  (void)RemoveDirRecursively(dir);
}
BENCHMARK(BM_SeqFileScan)->Arg(0)->Arg(1);

}  // namespace
}  // namespace manimal

BENCHMARK_MAIN();
