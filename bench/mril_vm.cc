// MRIL VM dispatch microbenchmark: instructions/second for the
// computed-goto (threaded) and portable switch interpreter backends,
// over loop kernels chosen to stress what the link step optimizes.
//
//   fused    a generated program of 64 unrolled selection blocks, each
//            dominated by the two superinstructions (load_param_field,
//            cmp_*_br) with PRNG-driven branch outcomes. The long,
//            aperiodic opcode sequence is the regime where dispatch
//            strategy matters: a single switch site must predict the
//            next of ~36 targets from deep history, while threaded
//            dispatch gives every handler its own indirect-branch
//            site with far fewer plausible successors.
//   tight    the degenerate opposite — an 8-instruction counting loop.
//            Its dispatch sequence is perfectly periodic, so both
//            backends predict it; included to show the bound.
//   arith    a straight i64 arithmetic loop (add/mul/mod) — raw
//            dispatch overhead plus the inline integer fast path.
//   builtin  a tokenization loop (str.word_at / str.equals) — dispatch
//            share is small; included to bound what interpreter work
//            means for real UDFs.
//
// Rows land in MANIMAL_BENCH_JSON (see bench_util.h); the committed
// snapshot is BENCH_vm.json. MANIMAL_SCALE multiplies iteration
// counts.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "mril/assembler.h"
#include "mril/vm.h"

namespace manimal::bench {
namespace {

using mril::Program;
using mril::VmDispatch;
using mril::VmInstance;
using mril::VmOptions;

// Each kernel's map() takes the iteration count in field `n` of the
// record value and loops that many times, so one InvokeMap amortizes
// the invocation setup across millions of instructions.
constexpr const char* kTightKernel = R"(
.program vmbench-tight
.key_type i64
.value_schema n:i64,f0:i64,f1:i64,f2:i64,f3:i64,f4:i64,f5:i64,f6:i64,f7:i64
.func map locals=1
  load_const i64:0
  store_local 0
loop:
  load_param 1
  get_field n
  load_local 0
  cmp_gt
  jmp_if_false done
  load_local 0
  load_const i64:1
  add
  store_local 0
  jmp loop
done:
  return
.endfunc
)";

// Generates the fused kernel: 64 unrolled blocks, each advancing an
// LCG in local 0, taking a PRNG-dependent branch, and accumulating a
// load_param_field result into local 1. Per block the linked stream is
// mostly superinstructions and short handlers, and the branch pattern
// is aperiodic — the opcode at the dispatch point is genuinely
// data-dependent.
std::string GenerateFusedKernel() {
  std::string text = R"(
.program vmbench-fused
.key_type i64
.value_schema n:i64,f0:i64,f1:i64,f2:i64,f3:i64,f4:i64,f5:i64,f6:i64,f7:i64
.func map locals=3
  load_const i64:1
  store_local 0
  load_const i64:0
  store_local 1
  load_const i64:0
  store_local 2
loop:
)";
  constexpr int kBlocks = 64;
  for (int b = 0; b < kBlocks; ++b) {
    const int mod = 3 + (b * 2) % 11;       // 3..13, varies per block
    const int cut = mod / 2;                // roughly even split
    text += StrPrintf(R"(
  load_local 0
  load_const i64:6364136223846793005
  mul
  load_const i64:%d
  add
  store_local 0
  load_local 0
  load_const i64:%d
  mod
  load_const i64:%d
  cmp_gt
  jmp_if_false skip%d
  load_param 1
  get_field f%d
  load_local 1
  add
  store_local 1
  jmp join%d
skip%d:
  load_param 1
  get_field f%d
  load_local 1
  sub
  store_local 1
join%d:
)",
                      static_cast<int>(1442695040888963407LL % (b + 13)),
                      mod, cut, b, b % 8, b, b, (b + 3) % 8, b);
  }
  text += R"(
  load_local 2
  load_const i64:1
  add
  store_local 2
  load_param 1
  get_field n
  load_local 2
  cmp_gt
  jmp_if_false done
  jmp loop
done:
  load_param 0
  load_local 1
  emit
  return
.endfunc
)";
  return text;
}

constexpr const char* kArithKernel = R"(
.program vmbench-arith
.key_type i64
.value_schema n:i64,threshold:i64
.func map locals=2
  load_const i64:0
  store_local 0
  load_const i64:1
  store_local 1
loop:
  load_local 1
  load_const i64:2862933555777941757
  mul
  load_const i64:3037000493
  add
  store_local 1
  load_local 0
  load_const i64:1
  add
  store_local 0
  load_param 1
  get_field n
  load_local 0
  cmp_gt
  jmp_if_false done
  jmp loop
done:
  load_param 0
  load_local 1
  emit
  return
.endfunc
)";

constexpr const char* kBuiltinKernel = R"(
.program vmbench-builtin
.key_type i64
.value_schema n:i64,doc:str
.func map locals=2
  load_const i64:0
  store_local 0
  load_const i64:0
  store_local 1
loop:
  load_param 1
  get_field n
  load_local 0
  cmp_gt
  jmp_if_false done
  load_param 1
  get_field doc
  load_local 0
  load_param 1
  get_field n
  mod
  call str.word_at
  load_const str:"lorem"
  call str.equals
  jmp_if_false skip
  load_local 1
  load_const i64:1
  add
  store_local 1
skip:
  load_local 0
  load_const i64:1
  add
  store_local 0
  jmp loop
done:
  load_param 0
  load_local 1
  emit
  return
.endfunc
)";

struct Kernel {
  std::string name;
  std::string text;
  int64_t loop_n;     // iterations per invocation (scaled)
  int64_t invokes;    // invocations per timed run
};

Value KernelValue(const Kernel& kernel) {
  ValueList record;
  record.push_back(Value::I64(kernel.loop_n));
  if (kernel.name == "builtin") {
    std::string doc;
    for (int64_t i = 0; i < kernel.loop_n; ++i) {
      doc += (i % 7 == 0) ? "lorem " : "ipsum ";
    }
    if (!doc.empty()) doc.pop_back();
    record.push_back(Value::Str(std::move(doc)));
  } else if (kernel.name == "arith") {
    record.push_back(Value::I64(42));
  } else {
    // fused / tight: eight i64 payload fields.
    for (int64_t f = 0; f < 8; ++f) record.push_back(Value::I64(f + 1));
  }
  return Value::List(std::move(record));
}

// Runs the kernel under one backend; returns instructions/second.
double Measure(const Program& program, const Kernel& kernel,
               VmDispatch dispatch, VmDispatch* effective) {
  VmOptions options;
  options.dispatch = dispatch;
  VmInstance vm(&program, options);
  *effective = vm.effective_dispatch();
  vm.set_emit_sink([](const Value&, const Value&) { return Status::OK(); });
  const Value key = Value::I64(0);
  const Value value = KernelValue(kernel);
  // Warm-up invocation (faults pages, sizes buffers).
  CheckOk(vm.InvokeMap(key, value), "warmup invoke");
  const int64_t steps_before = vm.total_steps();
  Stopwatch timer;
  for (int64_t i = 0; i < kernel.invokes; ++i) {
    CheckOk(vm.InvokeMap(key, value), "invoke");
  }
  const double seconds = timer.ElapsedSeconds();
  const int64_t steps = vm.total_steps() - steps_before;
  return static_cast<double>(steps) / seconds;
}

int Main() {
  const int64_t scale = ScaleFactor();
  const std::vector<Kernel> kernels = {
      // The fused kernel's outer loop runs ~1700 linked instructions
      // per iteration, so fewer iterations reach the same stream size.
      {"fused", GenerateFusedKernel(), 2'000 * scale, 30},
      {"tight", kTightKernel, 200'000 * scale, 50},
      {"arith", kArithKernel, 200'000 * scale, 50},
      {"builtin", kBuiltinKernel, 2'000 * scale, 200},
  };

  std::printf("MRIL VM dispatch microbench (threaded available: %s)\n",
              mril::ThreadedDispatchAvailable() ? "yes" : "no");
  TablePrinter table({"kernel", "backend", "Minstr/s", "vs switch"});
  for (const Kernel& kernel : kernels) {
    Program program =
        CheckOk(mril::AssembleProgram(kernel.text), "assemble kernel");
    double per_backend[2] = {0, 0};
    const struct {
      VmDispatch dispatch;
      const char* name;
    } backends[] = {{VmDispatch::kSwitch, "switch"},
                    {VmDispatch::kThreaded, "threaded"}};
    for (int b = 0; b < 2; ++b) {
      VmDispatch effective = VmDispatch::kSwitch;
      double best = 0;
      // Best-of-N to shed scheduler noise.
      for (int rep = 0; rep < std::max(1, Runs()) + 2; ++rep) {
        best = std::max(best, Measure(program, kernel,
                                      backends[b].dispatch, &effective));
      }
      per_backend[b] = best;
      const bool fell_back = backends[b].dispatch == VmDispatch::kThreaded &&
                             effective != VmDispatch::kThreaded;
      const double ratio = per_backend[0] > 0 ? best / per_backend[0] : 1;
      table.AddRow({kernel.name,
                    fell_back ? "threaded(->switch)" : backends[b].name,
                    StrPrintf("%.1f", best / 1e6),
                    StrPrintf("%.2fx", ratio)});
      JsonRow("mril_vm", std::string(kernel.name) + "/" + backends[b].name)
          .Str("effective_backend",
               effective == VmDispatch::kThreaded ? "threaded" : "switch")
          .Num("instructions_per_sec", best)
          .Num("vs_switch", ratio)
          .Emit();
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace manimal::bench

int main() { return manimal::bench::Main(); }
