// Appendix E extension benchmark: reduce-side GROUP-BY/WHERE
// filtering. The paper: "If we could accurately predict which
// temporary map outputs will be removed by the WHERE-related filtering
// clause inside reduce, then we could delete this temporary data prior
// to shuffle-reduce without any impact on final program output. We
// have implemented some infrastructure to perform these optimizations,
// but performance results are still inconclusive."
//
// This harness makes the results conclusive for our fabric: a count-
// per-rank query whose reduce reports only keys above a threshold,
// swept across key selectivities. The filter needs no index artifact —
// it rides on program analysis alone.

#include <cstdio>

#include "bench/bench_util.h"
#include "mril/builder.h"
#include "workloads/datagen.h"
#include "workloads/schemas.h"

namespace manimal {
namespace {

mril::Program CountPerRankWhereKeyAbove(int64_t key_threshold) {
  mril::ProgramBuilder b("count-where-key");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank");
  m.LoadI64(1);
  m.Emit().Ret();
  auto& r = b.Reduce();
  int i = r.NewLocal(), n = r.NewLocal(), sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i).LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum).LoadParam(1).LoadLocal(i).Call("list.get").Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadParam(0).LoadI64(key_threshold).CmpGt().JmpIfFalse("end");
  r.LoadParam(0).LoadLocal(sum).Emit();
  r.Label("end").Ret();
  return b.Build();
}

}  // namespace
}  // namespace manimal

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("ext-filter");

  workloads::WebPagesOptions pages;
  pages.num_pages = 120000 * scale;
  pages.content_len = 96;
  pages.rank_range = 100000;
  bench::CheckOk(
      workloads::GenerateWebPages(ws.file("pages.msq"), pages).status(),
      "gen webpages");

  auto system = ws.OpenSystem();

  std::printf(
      "Appendix E extension: pre-shuffle deletion of map outputs the "
      "reduce's WHERE clause discards (scale=%lld)\n(paper: "
      "infrastructure implemented, 'performance results still "
      "inconclusive')\n\n",
      static_cast<long long>(scale));
  bench::TablePrinter table({"Groups kept", "Shuffle bytes (off)",
                             "Shuffle bytes (on)", "Baseline",
                             "Filtered", "Speedup", "Outputs"});

  bool all_match = true;
  for (int keep_pct : {50, 20, 5, 1}) {
    int64_t threshold =
        pages.rank_range - (pages.rank_range * keep_pct) / 100 - 1;
    mril::Program program = CountPerRankWhereKeyAbove(threshold);
    core::ManimalSystem::Submission job;
    job.program = program;
    job.input_path = ws.file("pages.msq");

    job.output_path = ws.file("base.prs");
    exec::JobResult baseline = bench::Averaged([&] {
      return bench::CheckOk(system->RunBaseline(job), "baseline");
    });

    job.output_path = ws.file("opt.prs");
    core::ManimalSystem::SubmitOutcome outcome;
    exec::JobResult filtered = bench::Averaged([&] {
      outcome = bench::CheckOk(system->Submit(job), "submit");
      return outcome.job;
    });
    bench::CheckOk(
        outcome.report.reduce_filter.has_value()
            ? Status::OK()
            : Status::Internal("reduce filter not detected"),
        "filter detection");

    auto a = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("base.prs")),
                            "baseline output");
    auto b = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("opt.prs")),
                            "filtered output");
    bool match = a == b;
    all_match = all_match && match;

    table.AddRow({StrPrintf("%d%%", keep_pct),
                  HumanBytes(baseline.counters.map_output_bytes),
                  HumanBytes(filtered.counters.map_output_bytes),
                  bench::Secs(baseline.reported_seconds),
                  bench::Secs(filtered.reported_seconds),
                  bench::Ratio(baseline.reported_seconds /
                               filtered.reported_seconds),
                  match ? "identical" : "MISMATCH"});
    bench::JsonRow("ext_reduce_filter",
                   StrPrintf("keep-%d%%/baseline", keep_pct))
        .Job(baseline)
        .Emit();
    bench::JsonRow("ext_reduce_filter",
                   StrPrintf("keep-%d%%/filtered", keep_pct))
        .Num("speedup", baseline.reported_seconds /
                            filtered.reported_seconds)
        .Job(filtered)
        .Emit();
  }
  table.Print();
  std::printf("\nAll outputs identical to baseline: %s\n",
              all_match ? "yes" : "NO (BUG)");
  return all_match ? 0 : 1;
}
