// Regenerates Figure 4: the control-flow graph of the §2.1 example
//
//   void map(String k, WebPage v) { if (v.rank > 1) emit(k, 1); }
//
// as a block listing and GraphViz DOT (pipe into `dot -Tpng`).

#include <cstdio>

#include "analysis/cfg.h"
#include "bench/bench_util.h"
#include "workloads/pavlo.h"

int main() {
  using namespace manimal;
  mril::Program program = workloads::ExampleRankFilter(1);
  analysis::Cfg cfg = analysis::Cfg::Build(program.map_fn);

  std::printf(
      "Figure 4: control-flow graph of the Section 2.1 example map()\n"
      "(paper: fn entry -> [v.rank > 1] -> {emit(k, 1) | end block} -> "
      "fn exit)\n\n");
  std::printf("Compiled map():\n%s\n",
              mril::DisassembleFunction(program, program.map_fn).c_str());

  std::printf("Basic blocks (%zu) and edges (%zu):\n",
              cfg.blocks().size(), cfg.edges().size());
  for (const analysis::BasicBlock& bb : cfg.blocks()) {
    std::printf("  b%d: pc %d..%d\n", bb.id, bb.first_pc, bb.last_pc);
  }
  for (const analysis::CfgEdge& e : cfg.edges()) {
    std::printf("  b%d -> b%d  [%s]\n", e.from, e.to,
                analysis::EdgeKindName(e.kind));
  }
  std::printf("  cyclic: %s\n\n", cfg.HasCycle() ? "yes" : "no");

  std::printf("GraphViz:\n%s", cfg.ToDot(program, program.map_fn).c_str());
  bench::JsonRow("fig4_cfg", "summary")
      .Int("blocks", cfg.blocks().size())
      .Int("edges", cfg.edges().size())
      .Int("cyclic", cfg.HasCycle() ? 1 : 0)
      .Emit();
  return 0;
}
