// Regenerates Figure 5: use-def chains for the §2.1 example map() —
// the recovered symbolic expressions (use-def DAGs) for every
// interesting statement, plus the contrast with Figure 2's unsafe
// member-dependent variant.

#include <cstdio>

#include "analysis/cfg.h"
#include "analysis/expr_recovery.h"
#include "analysis/reaching_defs.h"
#include "bench/bench_util.h"
#include "mril/program.h"
#include "workloads/pavlo.h"

namespace manimal {
namespace {

void DumpProgram(const mril::Program& program, const char* title) {
  const mril::Function& fn = program.map_fn;
  analysis::Cfg cfg = analysis::Cfg::Build(fn);
  analysis::ReachingDefs reaching(fn, cfg);
  analysis::ExprRecovery recovery(program, fn, cfg, reaching);

  std::printf("%s\n%s\n", title,
              mril::DisassembleFunction(program, fn).c_str());
  for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
    switch (fn.code[pc].op) {
      case mril::Opcode::kJmpIfTrue:
      case mril::Opcode::kJmpIfFalse: {
        auto cond = recovery.BranchCondition(pc);
        std::string why;
        bool functional = analysis::IsFunctional(cond, &why);
        std::printf("  branch@%d condition: %s  [%s%s]\n", pc,
                    cond->ToString().c_str(),
                    functional ? "functional" : "NOT functional: ",
                    functional ? "" : why.c_str());
        break;
      }
      case mril::Opcode::kEmit: {
        auto [key, value] = recovery.EmitOperands(pc);
        std::printf("  emit@%d key:   %s\n", pc, key->ToString().c_str());
        std::printf("  emit@%d value: %s\n", pc,
                    value->ToString().c_str());
        break;
      }
      default:
        break;
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace manimal

int main() {
  using namespace manimal;
  std::printf(
      "Figure 5: use-def chains (recovered use-def DAGs) for the "
      "Section 2.1 example\n(paper: emit(k, 1) depends on String k; "
      "the guard depends on WebPage v via v.rank)\n\n");
  DumpProgram(workloads::ExampleRankFilter(1),
              "Section 2.1 example map():");
  DumpProgram(workloads::Figure2Unsafe(1),
              "Figure 2 unsafe variant (member numMapsRun in the "
              "guard):");
  bench::JsonRow("fig5_usedef", "summary")
      .Int("programs_dumped", 2)
      .Emit();
  return 0;
}
