// Reproduces Table 4 (Appendix D): the projection microbenchmark
//
//   SELECT url, pageRank FROM WebPages WHERE pageRank > threshold
//
// in three configurations: Small-1 (short content, few tuples),
// Small-2 (short content, more tuples), Large (long content — most of
// the file is the projected-away column). Paper shape: 2.4x / 3x /
// 27.8x — the win grows with the fraction of bytes projected away.
// This bench isolates projection: only the projection artifact is
// built (no B+Tree), as in the paper.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace manimal {
namespace {

struct Config {
  std::string name;
  uint64_t num_pages;
  int content_len;
};

}  // namespace
}  // namespace manimal

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();

  // Proportions follow the paper: Small-2 has ~2.4x the tuples of
  // Small-1; Large has Small-1's tuple count but ~20x the content.
  std::vector<Config> configs = {
      {"Small-1", static_cast<uint64_t>(50000 * scale), 96},
      {"Small-2", static_cast<uint64_t>(120000 * scale), 96},
      {"Large", static_cast<uint64_t>(50000 * scale), 2048},
  };

  std::printf(
      "Table 4: Projection microbenchmark (scale=%lld)\n(paper: "
      "Small-1 2.4x, Small-2 3x, Large 27.8x — speedup grows with the "
      "projected-away byte fraction)\n\n",
      static_cast<long long>(scale));
  bench::TablePrinter table({"Config", "Input size", "Index size",
                             "Hadoop", "Manimal", "Speedup",
                             "Outputs"});
  bool all_match = true;

  for (const Config& config : configs) {
    bench::BenchWorkspace ws("table4-" + config.name);
    workloads::WebPagesOptions pages;
    pages.num_pages = config.num_pages;
    pages.content_len = config.content_len;
    pages.rank_range = 100000;
    bench::CheckOk(
        workloads::GenerateWebPages(ws.file("pages.msq"), pages)
            .status(),
        "gen webpages");
    auto input_bytes =
        bench::CheckOk(GetFileSize(ws.file("pages.msq")), "file size");

    auto system = ws.OpenSystem();
    // Selectivity 50% so the scan cost, not the output, dominates.
    mril::Program program = workloads::ProjectionQuery(50000);

    analyzer::AnalysisReport report =
        bench::CheckOk(analyzer::Analyze(program), "analyze");
    auto specs = analyzer::SynthesizeIndexPrograms(program, report);
    const analyzer::IndexGenProgram* project_only = nullptr;
    for (const auto& spec : specs) {
      if (spec.projection && !spec.btree && !spec.delta &&
          !spec.dictionary) {
        project_only = &spec;
      }
    }
    bench::CheckOk(project_only == nullptr
                       ? Status::Internal("no projection-only spec")
                       : Status::OK(),
                   "projection spec");
    exec::IndexBuildResult build = bench::CheckOk(
        system->BuildIndex(*project_only, ws.file("pages.msq")),
        "build projection");

    core::ManimalSystem::Submission submission;
    submission.program = program;
    submission.input_path = ws.file("pages.msq");

    submission.output_path = ws.file("h.out");
    exec::JobResult hadoop = bench::Averaged([&] {
      return bench::CheckOk(system->RunBaseline(submission), "baseline");
    });

    submission.output_path = ws.file("m.out");
    core::ManimalSystem::SubmitOutcome outcome;
    exec::JobResult manimal = bench::Averaged([&] {
      outcome = bench::CheckOk(system->Submit(submission), "submit");
      return outcome.job;
    });
    bench::CheckOk(outcome.plan.optimized
                       ? Status::OK()
                       : Status::Internal(outcome.plan.explanation),
                   "expected optimized plan");

    auto h = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("h.out")),
                            "baseline output");
    auto m = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("m.out")),
                            "optimized output");
    bool match = h == m;
    all_match = all_match && match;

    table.AddRow({config.name, HumanBytes(input_bytes),
                  HumanBytes(build.entry.artifact_bytes),
                  bench::Secs(hadoop.reported_seconds),
                  bench::Secs(manimal.reported_seconds),
                  bench::Ratio(hadoop.reported_seconds /
                               manimal.reported_seconds),
                  match ? "identical" : "MISMATCH"});
    bench::JsonRow("table4_projection", config.name + "/hadoop")
        .Int("input_bytes_total", input_bytes)
        .Job(hadoop)
        .Emit();
    bench::JsonRow("table4_projection", config.name + "/manimal")
        .Int("artifact_bytes", build.entry.artifact_bytes)
        .Num("speedup",
             hadoop.reported_seconds / manimal.reported_seconds)
        .Job(manimal)
        .Emit();
  }
  table.Print();
  std::printf("\nAll outputs identical to baseline: %s\n",
              all_match ? "yes" : "NO (BUG)");
  return all_match ? 0 : 1;
}
