// §2.1 extension benchmark: column groups — "break input data into
// different smaller files, increasing the number of user programs that
// could use an index, at the cost of possibly-increased program
// execution time."
//
// One per-field column-group artifact over UserVisits is built ONCE,
// then three different analytical queries (each touching a different
// field subset) run against it. Compare against the conventional full
// scan and against each query's own exact-projection artifact — the
// column groups trade a little execution time for serving every query
// from a single artifact.

#include <cstdio>

#include "bench/bench_util.h"
#include "mril/builder.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal {
namespace {

// Three queries over disjoint-ish field subsets.
mril::Program RevenueBySource() {  // {sourceIP, adRevenue}
  return workloads::Benchmark2Aggregation();
}

mril::Program DurationByUrl() {  // {destURL, duration}
  return workloads::DurationSumQuery();
}

mril::Program VisitsByCountry() {  // {countryCode}
  mril::ProgramBuilder b("visits-by-country");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("countryCode");
  m.LoadI64(1);
  m.Emit().Ret();
  auto& r = b.Reduce();
  r.LoadParam(0);
  r.LoadParam(1).Call("list.len");
  r.Emit().Ret();
  return b.Build();
}

}  // namespace
}  // namespace manimal

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("ext-cgroups");

  workloads::UserVisitsOptions visits;
  visits.num_visits = 250000 * scale;
  visits.num_pages = 20000 * scale;
  bench::CheckOk(
      workloads::GenerateUserVisits(ws.file("visits.msq"), visits)
          .status(),
      "gen visits");
  uint64_t input_bytes =
      bench::CheckOk(GetFileSize(ws.file("visits.msq")), "size");

  std::vector<std::pair<std::string, mril::Program>> queries = {
      {"revenue by sourceIP", RevenueBySource()},
      {"duration by URL", DurationByUrl()},
      {"visits by country", VisitsByCountry()},
  };

  // Workspace A: one shared column-group artifact.
  auto cg_system = ws.OpenSystem();
  {
    auto report = bench::CheckOk(analyzer::Analyze(queries[0].second),
                                 "analyze");
    auto specs =
        analyzer::SynthesizeIndexPrograms(queries[0].second, report);
    const analyzer::IndexGenProgram* cgroups = nullptr;
    for (const auto& s : specs) {
      if (s.column_groups) cgroups = &s;
    }
    bench::CheckOk(cgroups == nullptr
                       ? Status::Internal("no column-group spec")
                       : Status::OK(),
                   "cgroups spec");
    auto build = bench::CheckOk(
        cg_system->BuildIndex(*cgroups, ws.file("visits.msq")),
        "build column groups");
    std::printf(
        "One shared artifact: %s (%s; input %s) serving all three "
        "queries\n\n",
        build.entry.artifact_path.c_str(),
        HumanBytes(build.entry.artifact_bytes).c_str(),
        HumanBytes(input_bytes).c_str());
  }

  // Workspace B: per-query exact projections (three artifacts).
  bench::BenchWorkspace ws_exact("ext-cgroups-exact");
  auto exact_system = ws_exact.OpenSystem();
  uint64_t exact_artifact_bytes = 0;
  for (auto& [name, program] : queries) {
    auto report =
        bench::CheckOk(analyzer::Analyze(program), "analyze");
    auto specs = analyzer::SynthesizeIndexPrograms(program, report);
    for (const auto& s : specs) {
      if (s.projection && !s.btree && !s.delta && !s.dictionary &&
          !s.column_groups) {
        auto build = bench::CheckOk(
            exact_system->BuildIndex(s, ws.file("visits.msq")),
            "build exact projection");
        exact_artifact_bytes += build.entry.artifact_bytes;
      }
    }
  }

  bench::TablePrinter table({"Query", "Full scan", "Column groups",
                             "Exact projection", "CG bytes read",
                             "Outputs"});
  bool all_match = true;
  double scan_total = 0, cg_total = 0, exact_total = 0;
  for (auto& [name, program] : queries) {
    core::ManimalSystem::Submission job;
    job.program = program;
    job.input_path = ws.file("visits.msq");

    job.output_path = ws.file("scan.prs");
    exec::JobResult scan = bench::Averaged([&] {
      return bench::CheckOk(cg_system->RunBaseline(job), "baseline");
    });

    job.output_path = ws.file("cg.prs");
    core::ManimalSystem::SubmitOutcome cg_outcome;
    exec::JobResult cg = bench::Averaged([&] {
      cg_outcome =
          bench::CheckOk(cg_system->Submit(job), "cgroups submit");
      return cg_outcome.job;
    });
    bench::CheckOk(cg_outcome.plan.optimized
                       ? Status::OK()
                       : Status::Internal(cg_outcome.plan.explanation),
                   "cgroups plan");

    job.output_path = ws.file("exact.prs");
    core::ManimalSystem::SubmitOutcome exact_outcome;
    exec::JobResult exact = bench::Averaged([&] {
      exact_outcome =
          bench::CheckOk(exact_system->Submit(job), "exact submit");
      return exact_outcome.job;
    });

    auto a = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("scan.prs")),
                            "scan out");
    auto b = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("cg.prs")),
                            "cg out");
    auto c = bench::CheckOk(
        exec::ReadCanonicalPairs(ws.file("exact.prs")), "exact out");
    bool match = a == b && a == c;
    all_match = all_match && match;
    scan_total += scan.reported_seconds;
    cg_total += cg.reported_seconds;
    exact_total += exact.reported_seconds;

    table.AddRow({name, bench::Secs(scan.reported_seconds),
                  bench::Secs(cg.reported_seconds),
                  bench::Secs(exact.reported_seconds),
                  HumanBytes(cg.counters.input_bytes),
                  match ? "identical" : "MISMATCH"});
    bench::JsonRow("ext_column_groups", name + "/scan").Job(scan).Emit();
    bench::JsonRow("ext_column_groups", name + "/column-groups")
        .Job(cg)
        .Emit();
    bench::JsonRow("ext_column_groups", name + "/exact-projection")
        .Job(exact)
        .Emit();
  }
  std::printf(
      "Column groups: one artifact, three workloads (scale=%lld)\n"
      "(paper: 'increasing the number of user programs that could use "
      "an index, at the cost of possibly-increased execution time')\n\n",
      static_cast<long long>(scale));
  table.Print();
  std::printf(
      "\nTotals: scan %.3fs | column groups %.3fs (%.2fx, 1 artifact) "
      "| exact projections %.3fs (%.2fx, 3 artifacts totalling %s)\n",
      scan_total, cg_total, scan_total / cg_total, exact_total,
      scan_total / exact_total,
      HumanBytes(exact_artifact_bytes).c_str());
  std::printf("All outputs identical: %s\n",
              all_match ? "yes" : "NO (BUG)");
  return all_match ? 0 : 1;
}
