// Codec scan benchmark: the four Pavlo benchmark programs over
// block-compressed (v2) re-encoded artifacts, each run with direct
// predicate evaluation on compressed blocks OFF then ON. Reports
// bytes scanned off disk, bytes decoded, blocks skipped, and wall
// time per row; the JSON-lines mirror (MANIMAL_BENCH_JSON) is the
// committed BENCH_codec.json.
//
// Only rows whose input clusters the predicate column can skip:
// UserVisits is generated in rough visitDate order, so the two B3
// date-range rows are the selective-scan rows the CI leg asserts on.
// B1's opaque Rankings defeat re-encoding (Table 1), and B2/B4 have
// no detected selection — they ride along to show the codec tier
// never hurts correctness or engages where it cannot prove skips.
//
// MANIMAL_CODEC_BENCH_ASSERT=1 turns the expected savings into hard
// failures: every row's direct-on output must equal direct-off, and
// at least two selective rows must cut bytes decoded by 2x or more.

#include <cstdio>
#include <cstdlib>

#include "analyzer/analyzer.h"
#include "analyzer/index_gen.h"
#include "bench/bench_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace {

struct RowResult {
  std::string name;
  manimal::exec::JobResult off, on;
  bool outputs_match = false;
  std::string codec_note;
};

}  // namespace

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("codec");

  // Inputs (deterministic; sizes scale with MANIMAL_SCALE).
  workloads::RankingsOptions rankings;
  rankings.num_pages = 50000 * scale;
  auto rankings_gen = bench::CheckOk(
      workloads::GenerateRankings(ws.file("rankings.msq"), rankings),
      "gen rankings");
  workloads::UserVisitsOptions visits;
  visits.num_visits = 150000 * scale;
  visits.num_pages = 50000 * scale;
  auto visits_gen = bench::CheckOk(
      workloads::GenerateUserVisits(ws.file("visits.msq"), visits),
      "gen uservisits");
  // The B3 date-range rows scan an access-log-shaped copy: visitDate
  // roughly chronological, so v2 blocks partition the date range and
  // skip frames can refute whole blocks.
  workloads::UserVisitsOptions chrono = visits;
  chrono.chronological = true;
  bench::CheckOk(
      workloads::GenerateUserVisits(ws.file("visits_chrono.msq"), chrono)
          .status(),
      "gen chronological uservisits");
  workloads::DocumentsOptions docs;
  docs.num_docs = 2000 * scale;
  docs.num_pages = 50000 * scale;
  auto docs_gen = bench::CheckOk(
      workloads::GenerateDocuments(ws.file("docs.msq"), docs),
      "gen documents");

  // B3's visitDate window: narrow is the paper's "all but 0.095%"
  // shape, wide keeps ~25% — both selective, different skip rates.
  const int64_t epoch = visits.date_epoch;
  const int64_t range = visits.date_range;
  struct BenchRow {
    const char* name;
    mril::Program program;
    std::string input;
  };
  const BenchRow rows[] = {
      {"b1-selection",
       workloads::Benchmark1Selection(rankings.rank_range -
                                      rankings.rank_range / 10),
       ws.file("rankings.msq")},
      {"b2-aggregation", workloads::Benchmark2Aggregation(),
       ws.file("visits.msq")},
      {"b3-join-wide",
       workloads::Benchmark3Join(epoch + range / 2,
                                 epoch + range / 2 + range / 4),
       ws.file("visits_chrono.msq")},
      {"b3-join-narrow",
       workloads::Benchmark3Join(epoch + range / 2,
                                 epoch + range / 2 + range / 1000),
       ws.file("visits_chrono.msq")},
      {"b4-udf", workloads::Benchmark4UdfAggregation(),
       ws.file("docs.msq")},
  };

  std::printf(
      "Codec scan bench (scale=%lld): %llu rankings, %llu visits, "
      "%llu docs\n"
      "Direct evaluation on compressed blocks: OFF vs ON per row.\n\n",
      static_cast<long long>(scale),
      static_cast<unsigned long long>(rankings_gen.records),
      static_cast<unsigned long long>(visits_gen.records),
      static_cast<unsigned long long>(docs_gen.records));

  std::vector<RowResult> results;
  for (const BenchRow& row : rows) {
    RowResult r;
    r.name = row.name;

    // One re-encoded (non-B+Tree) artifact per row, built under the
    // default MANIMAL_CODECS=auto policy so the selector picks the
    // chain; B+Tree specs are excluded because block skipping rides
    // the seqscan path.
    auto report =
        bench::CheckOk(analyzer::Analyze(row.program), "analyze");
    auto specs =
        analyzer::SynthesizeIndexPrograms(row.program, report);
    const analyzer::IndexGenProgram* reencoded = nullptr;
    for (const auto& s : specs) {
      if (!s.btree && !s.column_groups) reencoded = &s;
    }

    for (int direct = 0; direct <= 1; ++direct) {
      setenv("MANIMAL_DIRECT_EVAL", direct ? "1" : "0", 1);
      core::ManimalSystem::Options options;
      options.workspace_dir =
          ws.file(std::string(row.name) + (direct ? "-on" : "-off"));
      options.map_parallelism =
          static_cast<int>(EnvInt64("MANIMAL_THREADS", 4));
      options.num_partitions = options.map_parallelism;
      options.simulated_startup_seconds = 0.01;
      auto system = bench::CheckOk(core::ManimalSystem::Open(options),
                                   "open system");
      if (reencoded != nullptr) {
        auto build = bench::CheckOk(
            system->BuildIndex(*reencoded, row.input), "build index");
        r.codec_note = build.entry.codec_chain.empty()
                           ? "raw"
                           : build.entry.codec_chain;
      } else {
        r.codec_note = "no re-encoded artifact";
      }

      core::ManimalSystem::Submission submission;
      submission.program = row.program;
      submission.input_path = row.input;
      submission.output_path =
          ws.file(std::string(row.name) + (direct ? ".on" : ".off"));
      exec::JobResult job = bench::Averaged([&] {
        return bench::CheckOk(system->Submit(submission), "submit").job;
      });
      (direct ? r.on : r.off) = job;
    }
    unsetenv("MANIMAL_DIRECT_EVAL");

    auto off_pairs = bench::CheckOk(
        exec::ReadCanonicalPairs(ws.file(std::string(row.name) + ".off")),
        "off output");
    auto on_pairs = bench::CheckOk(
        exec::ReadCanonicalPairs(ws.file(std::string(row.name) + ".on")),
        "on output");
    r.outputs_match = off_pairs == on_pairs;
    results.push_back(std::move(r));
  }

  bench::TablePrinter table({"Row", "Codec", "Scanned", "Decoded off",
                             "Decoded on", "Skipped", "Wall off",
                             "Wall on", "Outputs"});
  int selective_wins = 0;
  bool all_match = true;
  for (const RowResult& r : results) {
    const double ratio =
        r.on.counters.bytes_decoded > 0
            ? static_cast<double>(r.off.counters.bytes_decoded) /
                  static_cast<double>(r.on.counters.bytes_decoded)
            : 1.0;
    if (r.on.counters.blocks_skipped > 0 && ratio >= 2.0) {
      ++selective_wins;
    }
    all_match = all_match && r.outputs_match;
    table.AddRow(
        {r.name, r.codec_note,
         HumanBytes(r.on.counters.input_bytes),
         HumanBytes(r.off.counters.bytes_decoded),
         HumanBytes(r.on.counters.bytes_decoded),
         std::to_string(r.on.counters.blocks_skipped),
         bench::Secs(r.off.reported_seconds),
         bench::Secs(r.on.reported_seconds),
         r.outputs_match ? "identical" : "MISMATCH"});
    for (const auto* leg : {&r.off, &r.on}) {
      bench::JsonRow("codec_scan",
                     r.name + (leg == &r.on ? "/direct-on"
                                            : "/direct-off"))
          .Str("codec", r.codec_note)
          .Num("decoded_reduction", leg == &r.on ? ratio : 1.0)
          .Int("outputs_match", r.outputs_match ? 1 : 0)
          .Job(*leg)
          .Emit();
    }
  }
  table.Print();
  std::printf(
      "\nselective rows with >=2x bytes-decoded reduction: %d\n",
      selective_wins);

  if (EnvInt64("MANIMAL_CODEC_BENCH_ASSERT", 0) != 0) {
    if (!all_match) {
      std::fprintf(stderr,
                   "FATAL: direct-on output diverged from direct-off\n");
      return 1;
    }
    if (selective_wins < 2) {
      std::fprintf(stderr,
                   "FATAL: expected >=2 selective rows with >=2x "
                   "bytes-decoded reduction, got %d\n",
                   selective_wins);
      return 1;
    }
  }
  return all_match ? 0 : 1;
}
