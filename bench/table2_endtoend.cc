// Reproduces Table 2: end-to-end performance on the four Pavlo
// benchmarks. For each task: generate data, run conventional Hadoop
// (baseline), let the analyzer emit the index-generation program, have
// the "administrator" build it, run the Manimal-optimized version, and
// report space overhead + speedup. Output equivalence is verified on
// every task.
//
// Paper shape to hold: B1 wins big (selectivity 0.02%), B2 ~3x via
// projection+delta, B3 ~7x via the embedded selection, B4 untouched.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace manimal {
namespace {

struct RowResult {
  std::string name;
  std::string description;
  double space_overhead = 0;
  double hadoop_secs = 0;
  double manimal_secs = 0;
  bool optimized = false;
  bool outputs_match = true;
};

RowResult RunCase(bench::BenchWorkspace& ws, const std::string& name,
                  const std::string& description,
                  const mril::Program& program,
                  const std::string& input_path) {
  auto system = ws.OpenSystem();
  RowResult row;
  row.name = name;
  row.description = description;

  core::ManimalSystem::Submission submission;
  submission.program = program;
  submission.input_path = input_path;

  submission.output_path = ws.file(name + ".hadoop.out");
  exec::JobResult baseline = bench::Averaged([&] {
    return bench::CheckOk(system->RunBaseline(submission), "baseline");
  });
  row.hadoop_secs = baseline.reported_seconds;
  bench::JsonRow("table2_endtoend", name + "/hadoop")
      .Str("description", description)
      .Job(baseline)
      .Emit();

  // Analyzer -> index-generation program -> admin builds it.
  analyzer::AnalysisReport report =
      bench::CheckOk(analyzer::Analyze(program), "analyze");
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  if (specs.empty()) {
    // No optimizations (Benchmark 4): Manimal leaves the job alone.
    row.manimal_secs = 0;
    row.optimized = false;
    return row;
  }
  exec::IndexBuildResult build = bench::CheckOk(
      system->BuildIndex(specs[0], input_path), "build index");
  row.space_overhead = build.entry.SpaceOverhead();

  submission.output_path = ws.file(name + ".manimal.out");
  core::ManimalSystem::SubmitOutcome outcome;
  exec::JobResult optimized = bench::Averaged([&] {
    outcome =
        bench::CheckOk(system->Submit(submission), "optimized submit");
    return outcome.job;
  });
  row.optimized = outcome.plan.optimized;
  row.manimal_secs = optimized.reported_seconds;
  bench::JsonRow("table2_endtoend", name + "/manimal")
      .Str("description", description)
      .Num("space_overhead", row.space_overhead)
      .Num("speedup", row.hadoop_secs / row.manimal_secs)
      .Job(optimized)
      .Emit();

  auto base_pairs = bench::CheckOk(
      exec::ReadCanonicalPairs(ws.file(name + ".hadoop.out")),
      "read baseline output");
  auto opt_pairs = bench::CheckOk(
      exec::ReadCanonicalPairs(ws.file(name + ".manimal.out")),
      "read optimized output");
  row.outputs_match = base_pairs == opt_pairs;
  return row;
}

}  // namespace
}  // namespace manimal

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("table2");

  // ---- datasets ----
  workloads::RankingsOptions rankings;
  rankings.num_pages = 200000 * scale;
  bench::CheckOk(
      workloads::GenerateRankings(ws.file("rankings.msq"), rankings)
          .status(),
      "gen rankings");

  workloads::UserVisitsOptions visits;
  visits.num_visits = 150000 * scale;
  visits.num_pages = 20000 * scale;
  bench::CheckOk(
      workloads::GenerateUserVisits(ws.file("visits.msq"), visits)
          .status(),
      "gen visits");

  workloads::DocumentsOptions docs;
  docs.num_docs = 4000 * scale;
  docs.num_pages = 20000 * scale;
  bench::CheckOk(
      workloads::GenerateDocuments(ws.file("docs.msq"), docs).status(),
      "gen documents");

  // ---- benchmark parameters ----
  // B1: selectivity 0.02% like the paper: rank uniform in [0,100000),
  // threshold keeps ~0.02%.
  mril::Program b1 = workloads::Benchmark1Selection(100000 - 20);
  // B3: visitDate uniform over `date_range` days; keep ~0.095%.
  int64_t lo = visits.date_epoch;
  int64_t hi = visits.date_epoch +
               std::max<int64_t>(1, visits.date_range / 1000) - 1;
  mril::Program b3 = workloads::Benchmark3Join(lo, hi);

  std::vector<RowResult> rows;
  rows.push_back(
      RunCase(ws, "Benchmark-1", "Selection", b1, ws.file("rankings.msq")));
  rows.push_back(RunCase(ws, "Benchmark-2", "Aggregation",
                         workloads::Benchmark2Aggregation(),
                         ws.file("visits.msq")));
  rows.push_back(RunCase(ws, "Benchmark-3", "Join", b3,
                         ws.file("visits.msq")));
  rows.push_back(RunCase(ws, "Benchmark-4", "UDF Aggregation",
                         workloads::Benchmark4UdfAggregation(),
                         ws.file("docs.msq")));

  std::printf(
      "Table 2: End-to-end Manimal performance on the Pavlo benchmarks "
      "(scale=%lld)\n(paper: B1 11.21x @0.1%% space, B2 2.96x @20%%, B3 "
      "6.73x @11.7%%, B4 no optimization)\n\n",
      static_cast<long long>(scale));
  bench::TablePrinter table({"Test", "Description", "Space Overhead",
                             "Hadoop", "Manimal", "Speedup",
                             "Outputs"});
  bool all_match = true;
  for (const RowResult& r : rows) {
    all_match = all_match && r.outputs_match;
    if (!r.optimized) {
      table.AddRow({r.name, r.description, "0%",
                    bench::Secs(r.hadoop_secs), "N/A", "0 (no opt)",
                    "n/a"});
    } else {
      table.AddRow({r.name, r.description, bench::Pct(r.space_overhead),
                    bench::Secs(r.hadoop_secs),
                    bench::Secs(r.manimal_secs),
                    bench::Ratio(r.hadoop_secs / r.manimal_secs),
                    r.outputs_match ? "identical" : "MISMATCH"});
    }
  }
  table.Print();
  std::printf("\nAll optimized outputs identical to baseline: %s\n",
              all_match ? "yes" : "NO (BUG)");
  return all_match ? 0 : 1;
}
