// Observability-overhead microbench (docs/observability.md): the same
// selection job timed with each telemetry surface switched on, so the
// cost of leaving the emission sites compiled in everywhere stays
// visible. The contract the docs promise is that DISABLED
// observability is free (one relaxed atomic load per emission site) —
// the "off" row here is the number the <2% regression budget against
// BENCH_baseline.json is judged on; the enabled rows price what
// turning each surface on actually buys you into.
//
//   off            everything disabled (the default production state)
//   journal        MANIMAL_JOURNAL-equivalent JSON-lines run journal
//   trace          in-memory span recording + Chrome trace export
//   analyze        EXPLAIN ANALYZE: per-task stats + per-record
//                  predicate observation (the only per-record surface)
//   all            journal + trace + analyze

#include <cstdio>

#include "bench/bench_util.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("obs-overhead");

  workloads::WebPagesOptions pages;
  pages.num_pages = 40000 * scale;
  pages.content_len = 128;
  pages.rank_range = 100000;
  bench::CheckOk(
      workloads::GenerateWebPages(ws.file("pages.msq"), pages).status(),
      "gen webpages");

  struct Mode {
    const char* name;
    bool journal;
    bool trace;
    bool analyze;
  };
  const Mode kModes[] = {
      {"off", false, false, false}, {"journal", true, false, false},
      {"trace", false, true, false}, {"analyze", false, false, true},
      {"all", true, true, true},
  };

  bench::TablePrinter table(
      {"mode", "wall", "overhead", "journal lines"});

  // One untimed warmup so the "off" row doesn't absorb page-cache and
  // allocator cold-start costs that every later mode gets for free.
  {
    auto system = ws.OpenSystem();
    core::ManimalSystem::Submission submission;
    submission.program = workloads::SelectionCountQuery(50000);
    submission.input_path = ws.file("pages.msq");
    submission.output_path = ws.file("out.prs");
    bench::CheckOk(system->Submit(submission).status(), "warmup");
    bench::CheckOk(RemoveFileIfExists(ws.file("out.prs")), "cleanup");
  }

  double off_wall = 0;
  for (const Mode& mode : kModes) {
    obs::Journal::Get().ResetForTest();
    if (mode.journal) {
      obs::Journal::Get().SetOutputPathForTest(ws.file("run.jsonl"));
    }
    obs::Tracer::Get().ClearForTest();
    obs::Tracer::Get().SetEnabledForTest(mode.trace);

    const uint64_t journal_before = obs::Journal::Get().events_written();
    core::ManimalSystem::Options options;
    options.workspace_dir = ws.file("ws");
    options.map_parallelism =
        static_cast<int>(EnvInt64("MANIMAL_THREADS", 4));
    options.num_partitions = options.map_parallelism;
    options.simulated_startup_seconds = 0;
    options.explain = mode.analyze ? optimizer::ExplainMode::kAnalyze
                                   : optimizer::ExplainMode::kOff;

    exec::JobResult job = bench::Averaged([&] {
      // A fresh system per run keeps workspace state comparable.
      auto system = bench::CheckOk(core::ManimalSystem::Open(options),
                                   "open system");
      core::ManimalSystem::Submission submission;
      submission.program = workloads::SelectionCountQuery(50000);
      submission.input_path = ws.file("pages.msq");
      submission.output_path = ws.file("out.prs");
      auto outcome =
          bench::CheckOk(system->Submit(submission), "submit");
      bench::CheckOk(RemoveFileIfExists(ws.file("out.prs")), "cleanup");
      return outcome.job;
    });
    const uint64_t journal_lines =
        obs::Journal::Get().events_written() - journal_before;
    obs::Tracer::Get().SetEnabledForTest(false);
    obs::Journal::Get().ResetForTest();

    if (mode.name == kModes[0].name) off_wall = job.wall_seconds;
    const double overhead =
        off_wall > 0 ? job.wall_seconds / off_wall - 1 : 0;
    table.AddRow({mode.name, bench::Secs(job.wall_seconds),
                  bench::Pct(overhead),
                  StrPrintf("%llu",
                            static_cast<unsigned long long>(
                                journal_lines))});
    bench::JsonRow("obs_overhead", mode.name)
        .Num("overhead_vs_off", overhead)
        .Int("journal_lines", static_cast<int64_t>(journal_lines))
        .Job(job)
        .Emit();
  }

  std::printf("\nObservability overhead (selection job, %llu pages)\n\n",
              static_cast<unsigned long long>(pages.num_pages));
  table.Print();
  return 0;
}
