// Appendix E extension benchmark: chained-job pipelines with
// cross-stage projection — "it should be quite possible to track
// relational-style operations across jobs".
//
// Pipeline: UserVisits -> (stage 1) per-URL [revenue, visits] ->
// (stage 2) histogram of revenue buckets. Stage 2 reads the revenue
// column only; with cross-stage projection on, stage 1 never writes
// the url and visits columns of the intermediate at all.

#include <cstdio>

#include "bench/bench_util.h"
#include "mril/builder.h"
#include "workloads/datagen.h"
#include "workloads/schemas.h"

namespace manimal {
namespace {

// Intermediate layout: url:str, revenue:i64, visits:i64.
Schema InterSchema() {
  return Schema({{"url", FieldType::kStr},
                 {"revenue", FieldType::kI64},
                 {"visits", FieldType::kI64}});
}

mril::Program StageOne() {
  mril::ProgramBuilder b("stage1-url-revenue");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("destURL");
  m.LoadParam(1).GetField("adRevenue");
  m.Emit().Ret();
  auto& r = b.Reduce();
  int i = r.NewLocal(), n = r.NewLocal(), sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i).LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum).LoadParam(1).LoadLocal(i).Call("list.get").Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  // emit(url, [revenue, visits]) -> intermediate row
  // [url, revenue, visits].
  r.LoadParam(0);
  r.LoadLocal(sum).LoadLocal(n).Call("list.pack2");
  r.Emit().Ret();
  return b.Build();
}

mril::Program StageTwo() {
  mril::ProgramBuilder b("stage2-revenue-histogram");
  b.SetKeyType(FieldType::kI64).SetValueSchema(InterSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("revenue").LoadI64(100000).Div();
  m.LoadI64(1);
  m.Emit().Ret();
  auto& r = b.Reduce();
  r.LoadParam(0);
  r.LoadParam(1).Call("list.len");
  r.Emit().Ret();
  return b.Build();
}

}  // namespace
}  // namespace manimal

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("ext-pipeline");

  workloads::UserVisitsOptions visits;
  visits.num_visits = 200000 * scale;
  visits.num_pages = 40000 * scale;
  bench::CheckOk(
      workloads::GenerateUserVisits(ws.file("visits.msq"), visits)
          .status(),
      "gen visits");

  auto system = ws.OpenSystem();

  auto stages = [&]() {
    std::vector<core::ManimalSystem::PipelineStage> s(2);
    s[0].program = StageOne();
    s[0].output_schema = InterSchema();
    s[1].program = StageTwo();
    return s;
  };

  core::ManimalSystem::PipelineOptions off;
  off.cross_stage_projection = false;
  auto baseline = bench::CheckOk(
      system->RunPipeline(stages(), ws.file("visits.msq"),
                          ws.file("off.prs"), off),
      "pipeline without cross-stage projection");
  auto optimized = bench::CheckOk(
      system->RunPipeline(stages(), ws.file("visits.msq"),
                          ws.file("on.prs")),
      "pipeline with cross-stage projection");

  auto a = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("off.prs")),
                          "baseline output");
  auto b = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("on.prs")),
                          "optimized output");
  bool match = a == b;

  double base_total = 0, opt_total = 0;
  for (size_t i = 0; i < baseline.stages.size(); ++i) {
    base_total += baseline.stages[i].job.reported_seconds;
    bench::JsonRow("ext_pipeline",
                   "no-cross-stage/stage" + std::to_string(i + 1))
        .Job(baseline.stages[i].job)
        .Emit();
  }
  for (size_t i = 0; i < optimized.stages.size(); ++i) {
    opt_total += optimized.stages[i].job.reported_seconds;
    bench::JsonRow("ext_pipeline",
                   "cross-stage/stage" + std::to_string(i + 1))
        .Job(optimized.stages[i].job)
        .Emit();
  }
  bench::JsonRow("ext_pipeline", "summary")
      .Num("baseline_seconds", base_total)
      .Num("optimized_seconds", opt_total)
      .Num("speedup", base_total / opt_total)
      .Int("intermediate_bytes_off",
           baseline.stages[1].job.counters.input_file_bytes)
      .Int("intermediate_bytes_on",
           optimized.stages[1].job.counters.input_file_bytes)
      .Emit();

  std::printf(
      "Appendix E extension: cross-stage projection in chained jobs "
      "(scale=%lld)\n(paper: pipelines named 'a very exciting topic for "
      "future investigation')\n\n",
      static_cast<long long>(scale));
  bench::TablePrinter table(
      {"", "no cross-stage projection", "with cross-stage projection"});
  table.AddRow({"intermediate size",
                HumanBytes(baseline.stages[1].job.counters
                               .input_file_bytes),
                HumanBytes(optimized.stages[1].job.counters
                               .input_file_bytes)});
  table.AddRow(
      {"stage-2 bytes read",
       HumanBytes(baseline.stages[1].job.counters.input_bytes),
       HumanBytes(optimized.stages[1].job.counters.input_bytes)});
  table.AddRow({"pipeline time", bench::Secs(base_total),
                bench::Secs(opt_total)});
  table.AddRow({"speedup", "", bench::Ratio(base_total / opt_total)});
  table.Print();
  std::printf("\nFinal outputs identical: %s\n",
              match ? "yes" : "NO (BUG)");
  return match ? 0 : 1;
}
