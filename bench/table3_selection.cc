// Reproduces Table 3 (§4.3): the selection microbenchmark
//
//   SELECT pageRank, COUNT(url) FROM WebPages
//   WHERE pageRank > Threshold GROUP BY pageRank
//
// at selectivities 60% .. 10%. One B+Tree-on-pageRank artifact serves
// every threshold (the index signature depends on the keyed
// expression, not the constant). Paper shape: speedup roughly linear
// in selectivity, 1.59x at 60% to 7.10x at 10%.

#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("table3");

  workloads::WebPagesOptions pages;
  pages.num_pages = 60000 * scale;
  pages.content_len = 384;
  pages.rank_range = 100000;
  auto gen = bench::CheckOk(
      workloads::GenerateWebPages(ws.file("pages.msq"), pages),
      "gen webpages");

  auto system = ws.OpenSystem();

  // Build the selection index once, driven by the analyzer's output
  // for any representative threshold.
  mril::Program representative = workloads::SelectionCountQuery(0);
  analyzer::AnalysisReport report =
      bench::CheckOk(analyzer::Analyze(representative), "analyze");
  auto specs =
      analyzer::SynthesizeIndexPrograms(representative, report);
  bench::CheckOk(specs.empty() ? Status::Internal("no index program")
                               : Status::OK(),
                 "index programs");
  // This bench isolates selection, like the paper: "we examine only
  // the selection optimization, even though others may apply". The
  // Table 3 caption's "indexed input size is 129.5GB" shows the
  // records live inside the index, so build a clustered B+Tree with
  // no projection folded in.
  bench::CheckOk(report.selection.has_value() &&
                         report.selection->indexable()
                     ? Status::OK()
                     : Status::Internal(report.ToString()),
                 "selection detection");
  analyzer::IndexGenProgram btree_only;
  btree_only.btree = true;
  btree_only.clustered = true;
  btree_only.key_expr = report.selection->indexed_expr;
  btree_only.input_schema = specs[0].input_schema;
  exec::IndexBuildResult build = bench::CheckOk(
      system->BuildIndex(btree_only, ws.file("pages.msq")),
      "build index");

  std::printf(
      "Table 3: Selection at various selectivities (scale=%lld, "
      "%llu pages, indexed input %s)\n(paper: speedups 1.59x @60%% ... "
      "7.10x @10%%, roughly linear)\n\n",
      static_cast<long long>(scale),
      static_cast<unsigned long long>(gen.records),
      HumanBytes(build.entry.input_bytes).c_str());

  bench::TablePrinter table({"Selectivity", "Output groups",
                             "Hadoop", "Manimal", "Speedup",
                             "Outputs"});
  bool all_match = true;
  for (int pct : {60, 50, 40, 30, 20, 10}) {
    // rank uniform in [0, rank_range): keep the top pct%.
    int64_t threshold =
        pages.rank_range - (pages.rank_range * pct) / 100 - 1;
    mril::Program program = workloads::SelectionCountQuery(threshold);

    core::ManimalSystem::Submission submission;
    submission.program = program;
    submission.input_path = ws.file("pages.msq");

    submission.output_path = ws.file("h.out");
    exec::JobResult hadoop = bench::Averaged([&] {
      return bench::CheckOk(system->RunBaseline(submission), "baseline");
    });

    submission.output_path = ws.file("m.out");
    core::ManimalSystem::SubmitOutcome outcome;
    exec::JobResult manimal = bench::Averaged([&] {
      outcome = bench::CheckOk(system->Submit(submission), "submit");
      return outcome.job;
    });
    bench::CheckOk(outcome.plan.optimized
                       ? Status::OK()
                       : Status::Internal(outcome.plan.explanation),
                   "expected optimized plan");

    auto h = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("h.out")),
                            "baseline output");
    auto m = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("m.out")),
                            "optimized output");
    bool match = h == m;
    all_match = all_match && match;

    table.AddRow({StrPrintf("%d%%", pct),
                  std::to_string(manimal.counters.output_records),
                  bench::Secs(hadoop.reported_seconds),
                  bench::Secs(manimal.reported_seconds),
                  bench::Ratio(hadoop.reported_seconds /
                               manimal.reported_seconds),
                  match ? "identical" : "MISMATCH"});
    bench::JsonRow("table3_selection",
                   StrPrintf("selectivity-%d%%/hadoop", pct))
        .Job(hadoop)
        .Emit();
    bench::JsonRow("table3_selection",
                   StrPrintf("selectivity-%d%%/manimal", pct))
        .Num("speedup",
             hadoop.reported_seconds / manimal.reported_seconds)
        .Job(manimal)
        .Emit();
  }
  table.Print();
  std::printf("\nAll outputs identical to baseline: %s\n",
              all_match ? "yes" : "NO (BUG)");
  return all_match ? 0 : 1;
}
