// Reproduces Table 5 (Appendix D): delta compression on numeric data.
//
// The paper isolates delta from projection: both sides run against a
// post-projection file (destURL + the three numeric fields); Manimal's
// side additionally delta-encodes visitDate/adRevenue/duration. Paper
// shape: ~47% space savings, ~1.05x runtime ("delta compression does
// reduce the bytes consumed by map(), but that function's
// computational effort is if anything slightly increased").

#include <cstdio>

#include "bench/bench_util.h"
#include "exec/engine.h"
#include "exec/index_build.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

int main() {
  using namespace manimal;
  const int64_t scale = bench::ScaleFactor();
  bench::BenchWorkspace ws("table5");

  workloads::UserVisitsOptions visits;
  visits.num_visits = 400000 * scale;
  visits.num_pages = 30000 * scale;
  bench::CheckOk(
      workloads::GenerateUserVisits(ws.file("visits.msq"), visits)
          .status(),
      "gen visits");
  uint64_t original_bytes =
      bench::CheckOk(GetFileSize(ws.file("visits.msq")), "file size");

  mril::Program program = workloads::DurationSumQuery();
  const std::string schema = workloads::UserVisitsSchema().ToString();

  // The experimenter-controlled artifacts (paper: "we projected out
  // all non-numeric fields" except the grouping URL, then
  // delta-compressed visitDate, adRevenue, duration).
  std::vector<int> kept = {workloads::kUvDestUrl,
                           workloads::kUvVisitDate,
                           workloads::kUvAdRevenue,
                           workloads::kUvDuration};
  std::vector<int> numerics = {workloads::kUvVisitDate,
                               workloads::kUvAdRevenue,
                               workloads::kUvDuration};

  analyzer::IndexGenProgram proj_spec;
  proj_spec.projection = true;
  proj_spec.kept_fields = kept;
  proj_spec.input_schema = schema;

  analyzer::IndexGenProgram delta_spec = proj_spec;
  delta_spec.delta = true;
  delta_spec.delta_fields = numerics;

  exec::IndexBuildResult proj_build = bench::CheckOk(
      exec::BuildIndexArtifact(proj_spec, ws.file("visits.msq"),
                               ws.file("artifacts"), ws.file("tmp1")),
      "build projection artifact");
  exec::IndexBuildResult delta_build = bench::CheckOk(
      exec::BuildIndexArtifact(delta_spec, ws.file("visits.msq"),
                               ws.file("artifacts"), ws.file("tmp2")),
      "build delta artifact");

  // Both sides read their artifact through a seqscan with the same
  // field remap.
  std::vector<int> remap(9, -1);
  for (size_t slot = 0; slot < kept.size(); ++slot) {
    remap[kept[slot]] = static_cast<int>(slot);
  }
  auto run = [&](const std::string& artifact,
                 const std::string& out) {
    exec::ExecutionDescriptor d;
    d.access_path = exec::AccessPath::kSeqScan;
    d.data_path = artifact;
    d.program = program;
    d.field_remap = remap;
    exec::JobConfig config;
    config.map_parallelism =
        static_cast<int>(EnvInt64("MANIMAL_THREADS", 4));
    config.num_partitions = config.map_parallelism;
    config.temp_dir = ws.file("jobtmp");
    config.output_path = out;
    config.simulated_startup_seconds = 0.01;
    return bench::Averaged([&] {
      return bench::CheckOk(exec::RunJob(d, config), "run job");
    });
  };

  exec::JobResult hadoop =
      run(proj_build.entry.artifact_path, ws.file("h.out"));
  exec::JobResult manimal =
      run(delta_build.entry.artifact_path, ws.file("m.out"));

  auto h = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("h.out")),
                          "baseline output");
  auto m = bench::CheckOk(exec::ReadCanonicalPairs(ws.file("m.out")),
                          "optimized output");
  bool match = h == m;

  double space_saving =
      1.0 - static_cast<double>(delta_build.entry.artifact_bytes) /
                static_cast<double>(proj_build.entry.artifact_bytes);

  bench::JsonRow("table5_delta", "hadoop").Job(hadoop).Emit();
  bench::JsonRow("table5_delta", "manimal")
      .Num("space_saving", space_saving)
      .Num("speedup",
           hadoop.reported_seconds / manimal.reported_seconds)
      .Job(manimal)
      .Emit();

  std::printf(
      "Table 5: Delta compression on numeric data (scale=%lld)\n"
      "(paper: ~47%% space savings over the post-projection file, "
      "~1.05x runtime)\n\n",
      static_cast<long long>(scale));
  bench::TablePrinter table({"", "Hadoop", "Manimal"});
  table.AddRow({"Original file size", HumanBytes(original_bytes),
                HumanBytes(original_bytes)});
  table.AddRow({"Post-projection size",
                HumanBytes(proj_build.entry.artifact_bytes),
                HumanBytes(proj_build.entry.artifact_bytes)});
  table.AddRow({"Input size (delta-compression)",
                HumanBytes(proj_build.entry.artifact_bytes),
                HumanBytes(delta_build.entry.artifact_bytes)});
  table.AddRow({"Running time", bench::Secs(hadoop.reported_seconds),
                bench::Secs(manimal.reported_seconds)});
  table.AddRow({"Speedup", "",
                bench::Ratio(hadoop.reported_seconds /
                             manimal.reported_seconds)});
  table.Print();
  std::printf("\nDelta space savings: %s   Outputs identical: %s\n",
              bench::Pct(space_saving).c_str(),
              match ? "yes" : "NO (BUG)");
  return match ? 0 : 1;
}
