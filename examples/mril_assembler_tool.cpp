// manimal-run: a small command-line driver that executes an MRIL
// assembler file against a SeqFile input through the full Manimal
// pipeline — analyze, plan against the catalog, execute — so UDFs can
// be written and iterated on without touching C++.
//
// Usage:
//   manimal-run <program.mril> <input.msq> <output.prs> [workspace]
//   manimal-run --build-index <program.mril> <input.msq> [workspace]
//   manimal-run --analyze <program.mril>
//   manimal-run --generate webpages|uservisits|rankings|documents
//               <out.msq> [count]
//
// With no workspace argument a throwaway one is used (no artifacts are
// reused across runs).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/assembler.h"
#include "workloads/datagen.h"

using namespace manimal;

namespace {

void DieIf(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  DieIf(result.status(), what);
  return std::move(result).value();
}

mril::Program LoadProgram(const std::string& path) {
  std::string text = Unwrap(ReadFileToString(path), "read program");
  return Unwrap(mril::AssembleProgram(text), "assemble");
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  manimal-run <program.mril> <input.msq> <output.prs> [ws]\n"
      "  manimal-run --build-index <program.mril> <input.msq> [ws]\n"
      "  manimal-run --analyze <program.mril>\n"
      "  manimal-run --generate webpages|uservisits|rankings|documents"
      " <out.msq> [count]\n");
  return 2;
}

int Generate(const std::string& kind, const std::string& path,
             uint64_t count) {
  workloads::GenStats stats;
  if (kind == "webpages") {
    workloads::WebPagesOptions options;
    if (count) options.num_pages = count;
    stats = Unwrap(workloads::GenerateWebPages(path, options), "generate");
  } else if (kind == "uservisits") {
    workloads::UserVisitsOptions options;
    if (count) options.num_visits = count;
    stats =
        Unwrap(workloads::GenerateUserVisits(path, options), "generate");
  } else if (kind == "rankings") {
    workloads::RankingsOptions options;
    if (count) options.num_pages = count;
    stats = Unwrap(workloads::GenerateRankings(path, options), "generate");
  } else if (kind == "documents") {
    workloads::DocumentsOptions options;
    if (count) options.num_docs = count;
    stats =
        Unwrap(workloads::GenerateDocuments(path, options), "generate");
  } else {
    return Usage();
  }
  std::printf("wrote %llu records (%s) to %s\n",
              (unsigned long long)stats.records,
              HumanBytes(stats.bytes).c_str(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();

  if (std::strcmp(argv[1], "--generate") == 0) {
    if (argc != 4 && argc != 5) return Usage();
    uint64_t count =
        argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 0;
    return Generate(argv[2], argv[3], count);
  }

  if (std::strcmp(argv[1], "--analyze") == 0) {
    if (argc != 3) return Usage();
    mril::Program program = LoadProgram(argv[2]);
    std::printf("%s\n", program.Disassemble().c_str());
    auto report = Unwrap(analyzer::Analyze(program), "analyze");
    std::printf("%s\n", report.ToString().c_str());
    for (const auto& spec :
         analyzer::SynthesizeIndexPrograms(program, report)) {
      std::printf("index program: %s\n", spec.Describe().c_str());
    }
    return 0;
  }

  if (std::strcmp(argv[1], "--build-index") == 0) {
    if (argc != 4 && argc != 5) return Usage();
    mril::Program program = LoadProgram(argv[2]);
    std::string input = argv[3];
    std::string ws = argc == 5 ? argv[4] : MakeTempDir("manimal-run");
    core::ManimalSystem::Options options;
    options.workspace_dir = ws;
    auto system = Unwrap(core::ManimalSystem::Open(options), "open");
    auto report = Unwrap(analyzer::Analyze(program), "analyze");
    auto specs = analyzer::SynthesizeIndexPrograms(program, report);
    if (specs.empty()) {
      std::printf("no optimization opportunities detected\n");
      return 0;
    }
    for (const auto& spec : specs) {
      auto build =
          Unwrap(system->BuildIndex(spec, input), "build index");
      std::printf("built %s\n  -> %s (%s)\n", spec.Describe().c_str(),
                  build.entry.artifact_path.c_str(),
                  HumanBytes(build.entry.artifact_bytes).c_str());
    }
    std::printf("workspace: %s\n", ws.c_str());
    return 0;
  }

  if (argc != 4 && argc != 5) return Usage();
  core::ManimalSystem::Submission job;
  job.program = LoadProgram(argv[1]);
  job.input_path = argv[2];
  job.output_path = argv[3];
  std::string ws = argc == 5 ? argv[4] : MakeTempDir("manimal-run");

  core::ManimalSystem::Options options;
  options.workspace_dir = ws;
  options.simulated_startup_seconds = 0;
  options.simulated_disk_bytes_per_sec = 0;
  auto system = Unwrap(core::ManimalSystem::Open(options), "open");
  auto outcome = Unwrap(system->Submit(job), "submit");

  std::printf("plan: %s\n", outcome.plan.explanation.c_str());
  std::printf("input records:   %llu\n",
              (unsigned long long)outcome.job.counters.input_records);
  std::printf("map invocations: %llu\n",
              (unsigned long long)outcome.job.counters.map_invocations);
  std::printf("bytes read:      %s\n",
              HumanBytes(outcome.job.counters.input_bytes).c_str());
  std::printf("output pairs:    %llu -> %s\n",
              (unsigned long long)outcome.job.counters.output_records,
              job.output_path.c_str());
  for (const auto& spec : outcome.index_programs) {
    std::printf("available index program: %s\n",
                spec.Describe().c_str());
  }
  std::printf("wall: %.3fs\n", outcome.job.wall_seconds);
  return 0;
}
