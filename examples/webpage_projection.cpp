// Projection scenario: a crawl-metadata job over WebPages whose
// content column dominates the file (paper §2.1, Table 4). The
// program never touches content, Manimal proves it, and the projected
// artifact shrinks the job's byte footprint by an order of magnitude.
//
// Also demonstrates the analyzer's log handling: the program logs the
// content field, and the optimizer still projects it away — debug
// output is "fair game" (Appendix C), and reads of projected-away
// fields observe null.

#include <cstdio>

#include "common/strings.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "workloads/datagen.h"
#include "workloads/schemas.h"

using namespace manimal;

namespace {

void DieIf(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  DieIf(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  std::string dir = MakeTempDir("projection-example");

  workloads::WebPagesOptions gen;
  gen.num_pages = 20000;
  gen.content_len = 4096;  // content dominates, as on the real web
  gen.rank_range = 100000;
  auto stats = Unwrap(
      workloads::GenerateWebPages(dir + "/crawl.msq", gen), "generate");
  std::printf("crawl file: %llu pages, %s\n",
              (unsigned long long)stats.records,
              HumanBytes(stats.bytes).c_str());

  // SELECT host(url), COUNT(*) FROM crawl WHERE rank > 50000
  // GROUP BY host(url)  — with a stray debug log of the content.
  mril::ProgramBuilder b("hosts-of-good-pages");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("content").Log();  // developer left this in
  m.LoadParam(1).GetField("rank").LoadI64(50000).CmpGt().JmpIfFalse(
      "end");
  m.LoadParam(1).GetField("url").Call("url.host");
  m.LoadI64(1);
  m.Emit();
  m.Label("end").Ret();
  auto& r = b.Reduce();
  r.LoadParam(0);
  r.LoadParam(1).Call("list.len");
  r.Emit().Ret();
  mril::Program program = b.Build();

  core::ManimalSystem::Options options;
  options.workspace_dir = dir + "/workspace";
  options.simulated_startup_seconds = 0;
  options.simulated_disk_bytes_per_sec = 0;
  auto system = Unwrap(core::ManimalSystem::Open(options), "open");

  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir + "/crawl.msq";
  job.output_path = dir + "/before.out";
  auto before = Unwrap(system->Submit(job), "submit");

  std::printf("\nanalysis:\n%s\n", before.report.ToString().c_str());
  if (!before.report.projection.has_value()) {
    std::fprintf(stderr, "expected projection to be detected\n");
    return 1;
  }

  // Build only the projection artifact to showcase it in isolation.
  const analyzer::IndexGenProgram* projection = nullptr;
  for (const auto& spec : before.index_programs) {
    if (spec.projection && !spec.btree && !spec.delta &&
        !spec.dictionary) {
      projection = &spec;
    }
  }
  if (projection == nullptr) {
    std::fprintf(stderr, "expected a projection-only index program\n");
    return 1;
  }
  auto build = Unwrap(system->BuildIndex(*projection, job.input_path),
                      "build projection");
  std::printf("projected artifact: %s (%.1f%% of the crawl)\n",
              HumanBytes(build.entry.artifact_bytes).c_str(),
              build.entry.SpaceOverhead() * 100);

  job.output_path = dir + "/after.out";
  auto after = Unwrap(system->Submit(job), "resubmit");
  std::printf("bytes read: %s conventional vs %s through the "
              "projection\n",
              HumanBytes(before.job.counters.input_bytes).c_str(),
              HumanBytes(after.job.counters.input_bytes).c_str());
  std::printf("debug log lines: %llu conventional vs %llu optimized "
              "(content now logs as null)\n",
              (unsigned long long)before.job.counters.log_messages,
              (unsigned long long)after.job.counters.log_messages);

  auto a = Unwrap(exec::ReadCanonicalPairs(dir + "/before.out"), "a");
  auto b2 = Unwrap(exec::ReadCanonicalPairs(dir + "/after.out"), "b");
  std::printf("outputs identical: %s (%zu host groups)\n",
              a == b2 ? "yes" : "NO", a.size());
  DieIf(RemoveDirRecursively(dir), "cleanup");
  return a == b2 ? 0 : 1;
}
