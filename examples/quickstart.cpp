// Quickstart: the full Manimal walkthrough from paper §2.2 in one
// file.
//
//   1. Write a small data file of WebPage records.
//   2. Express a map() in MRIL — an ordinary filtering UDF, no hints.
//   3. Submit it: the job runs conventionally, and Manimal hands back
//      an index-generation program it discovered by static analysis.
//   4. Play administrator: build the index.
//   5. Submit the SAME unmodified program again: it now runs through a
//      B+Tree range scan, skipping almost every map() invocation.
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "columnar/seqfile.h"
#include "common/strings.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "workloads/datagen.h"
#include "workloads/schemas.h"

using namespace manimal;

namespace {

void DieIf(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  DieIf(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  std::string dir = MakeTempDir("quickstart");

  // ---- 1. data: 50,000 WebPage records ----
  workloads::WebPagesOptions gen;
  gen.num_pages = 50000;
  gen.content_len = 256;
  gen.rank_range = 10000;
  auto stats = Unwrap(
      workloads::GenerateWebPages(dir + "/pages.msq", gen), "generate");
  std::printf("input: %llu records, %s\n",
              (unsigned long long)stats.records,
              HumanBytes(stats.bytes).c_str());

  // ---- 2. the user's program: plain MapReduce, no annotations ----
  //   void map(long k, WebPage v) {
  //     if (v.rank > 9900) emit(v.url, v.rank);   // top 1%
  //   }
  mril::ProgramBuilder builder("top-pages");
  builder.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::WebPagesSchema());
  auto& m = builder.Map();
  m.LoadParam(1).GetField("rank").LoadI64(9900).CmpGt().JmpIfFalse("end");
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("rank");
  m.Emit();
  m.Label("end").Ret();
  mril::Program program = builder.Build();
  std::printf("\ncompiled map():\n%s\n",
              mril::DisassembleFunction(program, program.map_fn).c_str());

  // ---- 3. open Manimal and submit ----
  core::ManimalSystem::Options options;
  options.workspace_dir = dir + "/workspace";
  options.simulated_startup_seconds = 0;
  options.simulated_disk_bytes_per_sec = 0;
  auto system = Unwrap(core::ManimalSystem::Open(options), "open");

  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir + "/pages.msq";
  job.output_path = dir + "/run1.out";

  auto first = Unwrap(system->Submit(job), "first submit");
  std::printf("analysis:\n%s\n", first.report.ToString().c_str());
  std::printf("plan: %s\n", first.plan.explanation.c_str());
  std::printf("run 1 (conventional): %llu map invocations, %s read, "
              "%llu output pairs\n",
              (unsigned long long)first.job.counters.map_invocations,
              HumanBytes(first.job.counters.input_bytes).c_str(),
              (unsigned long long)first.job.counters.output_records);

  // ---- 4. the administrator builds the emitted index program ----
  if (first.index_programs.empty()) {
    std::fprintf(stderr, "expected an index-generation program\n");
    return 1;
  }
  std::printf("\nindex-generation program: %s\n",
              first.index_programs[0].Describe().c_str());
  auto build = Unwrap(
      system->BuildIndex(first.index_programs[0], job.input_path),
      "build index");
  std::printf("built %s (%s, %.1f%% of input) in %.3fs\n",
              build.entry.artifact_path.c_str(),
              HumanBytes(build.entry.artifact_bytes).c_str(),
              build.entry.SpaceOverhead() * 100, build.seconds);

  // ---- 5. the same program again, now optimized ----
  job.output_path = dir + "/run2.out";
  auto second = Unwrap(system->Submit(job), "second submit");
  std::printf("\nplan: %s\n", second.plan.explanation.c_str());
  std::printf("run 2 (Manimal): %llu map invocations, %s read, "
              "%llu output pairs\n",
              (unsigned long long)second.job.counters.map_invocations,
              HumanBytes(second.job.counters.input_bytes).c_str(),
              (unsigned long long)second.job.counters.output_records);

  auto a = Unwrap(exec::ReadCanonicalPairs(dir + "/run1.out"), "read 1");
  auto b = Unwrap(exec::ReadCanonicalPairs(dir + "/run2.out"), "read 2");
  std::printf("\noutputs identical: %s\n", a == b ? "yes" : "NO");
  std::printf("map invocations avoided: %.1f%%\n",
              100.0 * (1.0 - double(second.job.counters.map_invocations) /
                                 double(first.job.counters.map_invocations)));
  DieIf(RemoveDirRecursively(dir), "cleanup");
  return a == b ? 0 : 1;
}
