// Log analysis scenario (the paper's motivating workload class:
// "business data analysis and log processing [are] the most popular
// Hadoop applications").
//
// A UserVisits click log is analyzed by two different teams' jobs over
// the same raw file — exactly the "different parties may analyze the
// same raw data" situation (§2.2) where index investment pays off:
//
//   job A: revenue by country for one week of traffic
//          (selection on visitDate + projection)
//   job B: total ad revenue per visited URL
//          (projection + delta-compression candidates)
//
// The example shows the two jobs sharing a catalog: each job's
// analysis produces its own artifacts, and re-submissions pick them up
// automatically.

#include <cstdio>

#include "common/strings.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "workloads/datagen.h"
#include "workloads/schemas.h"

using namespace manimal;

namespace {

void DieIf(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  DieIf(result.status(), what);
  return std::move(result).value();
}

// SELECT countryCode, SUM(adRevenue) FROM visits
// WHERE visitDate BETWEEN lo AND hi GROUP BY countryCode
mril::Program WeeklyRevenueByCountry(int64_t lo, int64_t hi) {
  mril::ProgramBuilder b("weekly-revenue-by-country");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("visitDate").LoadI64(lo).CmpGe().JmpIfFalse(
      "end");
  m.LoadParam(1).GetField("visitDate").LoadI64(hi).CmpLe().JmpIfFalse(
      "end");
  m.LoadParam(1).GetField("countryCode");
  m.LoadParam(1).GetField("adRevenue");
  m.Emit();
  m.Label("end").Ret();
  auto& r = b.Reduce();
  int i = r.NewLocal(), n = r.NewLocal(), sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i).LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum).LoadParam(1).LoadLocal(i).Call("list.get").Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadParam(0).LoadLocal(sum).Emit().Ret();
  return b.Build();
}

// SELECT destURL, SUM(adRevenue) FROM visits GROUP BY destURL
mril::Program RevenuePerUrl() {
  mril::ProgramBuilder b("revenue-per-url");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("destURL");
  m.LoadParam(1).GetField("adRevenue");
  m.Emit().Ret();
  auto& r = b.Reduce();
  int i = r.NewLocal(), n = r.NewLocal(), sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i).LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum).LoadParam(1).LoadLocal(i).Call("list.get").Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadParam(0).LoadLocal(sum).Emit().Ret();
  return b.Build();
}

void RunTwice(core::ManimalSystem* system, const mril::Program& program,
              const std::string& input, const std::string& out_dir,
              const char* title) {
  std::printf("== %s ==\n", title);
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = input;

  job.output_path = out_dir + "/before.out";
  auto before = Unwrap(system->Submit(job), "submit");
  std::printf("  first run:  %s (%s read)\n",
              before.plan.optimized ? "optimized" : "conventional",
              HumanBytes(before.job.counters.input_bytes).c_str());
  for (const auto& spec : before.index_programs) {
    auto build =
        Unwrap(system->BuildIndex(spec, input), "build index");
    std::printf("  admin built: %s -> %s\n", spec.Describe().c_str(),
                HumanBytes(build.entry.artifact_bytes).c_str());
  }
  job.output_path = out_dir + "/after.out";
  auto after = Unwrap(system->Submit(job), "resubmit");
  std::printf("  second run: %s (%s read)\n",
              after.plan.optimized ? "optimized" : "conventional",
              HumanBytes(after.job.counters.input_bytes).c_str());
  auto a = Unwrap(exec::ReadCanonicalPairs(out_dir + "/before.out"), "a");
  auto b = Unwrap(exec::ReadCanonicalPairs(out_dir + "/after.out"), "b");
  std::printf("  outputs identical: %s; %zu result groups\n\n",
              a == b ? "yes" : "NO", a.size());
  if (a != b) std::exit(1);
}

}  // namespace

int main() {
  std::string dir = MakeTempDir("log-analysis");

  workloads::UserVisitsOptions gen;
  gen.num_visits = 200000;
  gen.num_pages = 5000;
  auto stats = Unwrap(
      workloads::GenerateUserVisits(dir + "/visits.msq", gen), "gen");
  std::printf("click log: %llu visits, %s\n\n",
              (unsigned long long)stats.records,
              HumanBytes(stats.bytes).c_str());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir + "/workspace";
  options.simulated_startup_seconds = 0;
  options.simulated_disk_bytes_per_sec = 0;
  auto system = Unwrap(core::ManimalSystem::Open(options), "open");

  // One calendar week of the 30-day log.
  int64_t lo = gen.date_epoch + 7 * 86400;
  int64_t hi = lo + 7 * 86400 - 1;
  RunTwice(system.get(), WeeklyRevenueByCountry(lo, hi),
           dir + "/visits.msq", dir, "weekly revenue by country");
  RunTwice(system.get(), RevenuePerUrl(), dir + "/visits.msq", dir,
           "revenue per URL");

  std::printf("catalog now tracks %zu artifacts over the shared log\n",
              system->catalog().entries().size());
  DieIf(RemoveDirRecursively(dir), "cleanup");
  return 0;
}
